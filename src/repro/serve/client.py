"""Ring-aware cluster client: the redirect protocol's consumer.

The PR-8 cluster tier measured its own ceiling honestly: every byte
flowed through the single-process router, so four backends scaled like
one (``scaling_vs_1`` ~ 1.0 in BENCH_serve.json).  The redirect
protocol takes the router off the data path the way ARM-server HPC
front ends keep thin cores off theirs — the router stays the *control*
plane (topology discovery, fallback, job ops) while queries flow
client -> home shard directly:

* ``locate`` — one op returns the whole topology: every backend's
  ``(host, port)`` plus the **topology epoch** (a deterministic hash of
  the backend set, see :func:`~repro.serve.router.topology_epoch`).
  A bare ``repro serve`` answers the same op as a one-node topology,
  so the client degenerates cleanly when pointed at a single server.

* ``redirect`` — a thin client that does not hold the ring can send
  ``{"op": "query", ..., "redirect": true}``: instead of proxying, the
  router answers ``error: "redirect"`` naming the key's home shard and
  the epoch.  One extra round-trip on a cold key, then the client talks
  to the shard directly.

:class:`RingClient` holds the ring itself: it learns the topology once,
routes ``route_key(kind, params)`` placement with the very
:class:`~repro.serve.router.HashRing` the router uses (so client-side
placement and router-side placement can never disagree), and multiplexes
one connection per backend.  Direct queries are tagged
``"via": "direct"`` so backend stats distinguish them; the response
shape is byte-identical to the proxied path.

The fallback ladder, in order:

1. **direct** — the key's home shard over this client's own link;
2. **router** — on a link failure/timeout (or a home on failure
   cooldown), the query falls back to the router, which still proxies
   verbatim; the cluster answers even when the client's ring is wrong;
3. **re-learn** — after any fallback the client re-``locate``\\ s; a
   changed epoch (topology-version mismatch) rebuilds the ring and
   links, so stale clients converge instead of hammering dead shards.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import time
from typing import Any

from repro.serve.router import (
    DEFAULT_DOWN_COOLDOWN_S,
    DEFAULT_VNODES,
    BackendLink,
    HashRing,
    route_key,
)
from repro.serve.wire import DecodeMemo, EncodeMemo, SyncWireClient


def request_once(
    host: str,
    port: int,
    doc: dict[str, Any],
    timeout_s: float = 30.0,
    wire: str = "json",
) -> dict[str, Any]:
    """One op, one connection, one matched response (synchronous).

    The shared client primitive for one-shot CLI tools (``repro jobs``)
    and scripts: job ops are cheap and stateless per connection, so
    holding a socket buys nothing.  ``wire="binary"`` negotiates
    ``binary1`` first (one extra round-trip; a server that declines
    leaves the exchange on JSON-lines).
    """
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        if wire == "binary":
            client = SyncWireClient(sock)
            client.negotiate()
            return client.request({**doc, "id": 1})
        sock.sendall((json.dumps({**doc, "id": 1}) + "\n").encode())
        with sock.makefile("r", encoding="utf-8") as fh:
            line = fh.readline()
    if not line:
        raise ConnectionError("server closed the connection mid-request")
    resp = json.loads(line)
    if not isinstance(resp, dict):
        raise ValueError(f"malformed response: {line!r}")
    return resp


class RingClient:
    """See the module docstring.  Lifecycle::

        client = RingClient(router_host, router_port)
        await client.connect()          # one locate: topology + epoch
        doc = await client.query(kind, params)   # direct to home shard
        ...
        await client.close()

    ``connect()`` must succeed before ``query()``; everything after
    that degrades gracefully (fallback ladder in the module docstring).
    """

    def __init__(
        self,
        router_host: str,
        router_port: int,
        vnodes: int = DEFAULT_VNODES,
        request_timeout_s: float | None = 30.0,
        down_cooldown_s: float = DEFAULT_DOWN_COOLDOWN_S,
        wire: str = "json",
    ) -> None:
        # One memo pair shared by the router link and every shard link:
        # the hot set's params/values are the same objects whichever
        # link carries them, so the caches compound instead of split.
        self.wire = wire
        self._encode_memo = EncodeMemo()
        self._decode_memo = DecodeMemo()
        self.router = BackendLink(
            "router", router_host, router_port, wire=wire,
            encode_memo=self._encode_memo, decode_memo=self._decode_memo,
        )
        self.vnodes = vnodes
        self.request_timeout_s = request_timeout_s
        self.down_cooldown_s = down_cooldown_s
        self.epoch: str | None = None
        self.ring: HashRing | None = None
        self._links: dict[str, BackendLink] = {}
        self._down_until: dict[str, float] = {}
        self.direct_queries = 0    #: answered by a home shard directly
        self.router_fallbacks = 0  #: fell back to the proxied path
        self.topology_refreshes = 0  #: locate round-trips that rebuilt state

    # -- topology ----------------------------------------------------------
    async def connect(self) -> None:
        """Learn the topology (one ``locate`` against the router)."""
        await self._refresh_topology()
        if self.ring is None:  # pragma: no cover - _adopt raises first
            raise ConnectionError("no topology learned")

    async def _refresh_topology(self) -> None:
        doc = await self.router.request(
            {"op": "locate"}, timeout_s=self.request_timeout_s
        )
        if not doc.get("ok") or not doc.get("backends"):
            raise ConnectionError(f"locate failed: {doc}")
        await self._adopt(doc["epoch"], doc["backends"])

    async def _adopt(self, epoch: Any, backends: dict[str, Any]) -> None:
        """Install a topology; a no-op when the epoch already matches."""
        if epoch == self.epoch:
            return
        old = list(self._links.values())
        self._links = {
            name: BackendLink(
                name, host, int(port), wire=self.wire,
                encode_memo=self._encode_memo,
                decode_memo=self._decode_memo,
            )
            for name, (host, port) in sorted(backends.items())
        }
        # Same construction as the router's: placement is independent
        # of order, so sorted names give the identical ring.
        self.ring = HashRing(sorted(backends), self.vnodes)
        self.epoch = epoch
        self._down_until.clear()
        self.topology_refreshes += 1
        for link in old:
            await link.close()

    def home(self, kind: str, params: dict[str, Any]) -> str:
        """The backend name owning this query's key."""
        assert self.ring is not None, "connect() first"
        return self.ring.home(route_key(kind, params))

    # -- the data path -----------------------------------------------------
    async def query(
        self, kind: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        """Resolve one query through the fallback ladder; returns the
        response doc (the same bytes either path would produce, minus
        the transport's ``id``)."""
        link = self._link_for(kind, params)
        if link is not None:
            try:
                doc = await link.request(
                    {"op": "query", "kind": kind, "params": params,
                     "via": "direct"},
                    timeout_s=self.request_timeout_s,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self._down_until[link.name] = (
                    time.monotonic() + self.down_cooldown_s
                )
            else:
                self.direct_queries += 1
                return doc
        return await self._fallback(kind, params)

    def _link_for(self, kind: str, params: dict[str, Any]) -> BackendLink | None:
        if self.ring is None:
            return None
        home = self.ring.home(route_key(kind, params))
        if self._down_until.get(home, 0.0) > time.monotonic():
            return None  # recently failed: skip straight to the router
        return self._links.get(home)

    async def _fallback(
        self, kind: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        """The router still proxies for us, then we re-learn the
        topology: a fallback usually means our ring is stale (epoch
        mismatch) or a shard died — either way the next query should
        route on fresh state instead of repeating the detour."""
        self.router_fallbacks += 1
        doc = await self.router.request(
            {"op": "query", "kind": kind, "params": params},
            timeout_s=self.request_timeout_s,
        )
        with contextlib.suppress(Exception):
            await self._refresh_topology()
        return doc

    async def locate(
        self, kind: str, params: dict[str, Any]
    ) -> dict[str, Any]:
        """Ask the router where a key lives (refreshing our ring if the
        answer's epoch says ours is stale); returns the locate doc."""
        doc = await self.router.request(
            {"op": "locate", "kind": kind, "params": params},
            timeout_s=self.request_timeout_s,
        )
        if doc.get("ok") and doc.get("backends"):
            await self._adopt(doc["epoch"], doc["backends"])
        return doc

    def snapshot(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "backends": sorted(self._links),
            "direct_queries": self.direct_queries,
            "router_fallbacks": self.router_fallbacks,
            "topology_refreshes": self.topology_refreshes,
        }

    async def close(self) -> None:
        for link in self._links.values():
            await link.close()
        await self.router.close()
