"""``repro serve`` / ``repro loadtest`` — the serving argument surface.

Usage::

    python -m repro serve                        # default cache + 2 workers
    python -m repro serve --port 7653 --jobs 4
    python -m repro loadtest --port 7653 --quick --assert-hit-ratio 0.9
    python -m repro loadtest --port 7653 --requests 2000 --rate 500 --shutdown

``repro serve`` prints one ``listening on HOST:PORT`` line (flushed) as
its readiness signal — CI and scripts wait for it before pointing the
load generator at the port.  SIGINT/SIGTERM trigger the same graceful
drain as the ``shutdown`` op: stop admitting, resolve everything
accepted, exit.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
from pathlib import Path

from repro.cli import jobs_count
from repro.parallel.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.jobs import JobManager, JobsConfig
from repro.serve.journal import JobJournal
from repro.serve.loadtest import (
    format_report,
    format_saturation_report,
    request_shutdown,
    run_loadtest_fleet,
    run_saturation,
)
from repro.serve.server import ServeServer

#: Default journal location for the durable job tier.
DEFAULT_JOURNAL_DIR = Path(".repro-jobs")


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve campaign queries over JSON-lines TCP with "
        "single-flight coalescing, cache-backed hits and micro-batched "
        "sharded execution.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = ephemeral; the actual port is "
        "printed on the 'listening on' line)",
    )
    parser.add_argument(
        "--jobs", type=jobs_count, default=2,
        help="worker processes per batch execution (default: 2)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01, metavar="S",
        help="micro-batch collection window in seconds (default: 0.01)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="distinct misses per batch (default: 32)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256, metavar="N",
        help="pending-computation bound before 429-style rejection "
        "(default: 256)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result-cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the result cache (every miss recomputes)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="study seed baked into cache keys (default: 0)",
    )
    parser.add_argument(
        "--name", default="serve",
        help="this backend's cluster shard name (default: serve); only "
        "meaningful with --peers",
    )
    parser.add_argument(
        "--peers", default=None, metavar="NAME=HOST:PORT,...",
        help="cluster peer map for cache peer-fill, e.g. "
        "'b0=127.0.0.1:7001,b1=127.0.0.1:7002'; must include this "
        "backend's own --name",
    )
    parser.add_argument(
        "--peer-timeout", type=float, default=2.0, metavar="S",
        help="cache peer-fill probe budget in seconds (default: 2.0)",
    )
    parser.add_argument(
        "--journal-dir", type=Path, default=DEFAULT_JOURNAL_DIR,
        metavar="DIR",
        help="durable job-tier journal location "
        f"(default: {DEFAULT_JOURNAL_DIR})",
    )
    parser.add_argument(
        "--no-jobs", action="store_true",
        help="serve queries only: disable the durable job tier",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=None, metavar="S",
        help="bound each shutdown drain stage (default: unbounded); "
        "at the deadline incomplete jobs stay parked in the journal "
        "and unresolved queries get an overloaded/draining response",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=4096, metavar="N",
        help="max queued job units per tenant (default: 4096)",
    )
    parser.add_argument(
        "--unit-attempts", type=int, default=3, metavar="N",
        help="unit attempts before quarantine (default: 3)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="S",
        help="base of the exponential unit-retry backoff (default: 0.05)",
    )
    parser.add_argument(
        "--job-batch", type=int, default=16, metavar="N",
        help="job units dispatched per batch — the checkpoint "
        "granularity a crash can lose (default: 16)",
    )
    parser.add_argument(
        "--wire", choices=("auto", "json"), default="auto",
        help="wire protocols to accept: 'auto' (default) negotiates "
        "the binary1 framing per connection and keeps JSON-lines as "
        "the default; 'json' disables binary entirely",
    )
    parser.add_argument(
        "--advertise-host", default=None, metavar="HOST",
        help="address locate/redirect answers hand to clients "
        "(default: the bind address, or this machine's primary "
        "address when binding a wildcard)",
    )
    args = parser.parse_args(argv)
    try:
        config = ServeConfig(
            jobs=args.jobs,
            batch_window_s=args.batch_window,
            max_batch=args.max_batch,
            queue_limit=args.queue_limit,
            cache_dir=None if args.no_cache else args.cache_dir,
            seed=args.seed,
        )
        jobs_config = JobsConfig(
            tenant_quota_units=args.tenant_quota,
            max_attempts=args.unit_attempts,
            retry_backoff_s=args.retry_backoff,
            batch_units=args.job_batch,
            seed=args.seed,
        )
        peers = parse_peers(args.peers) if args.peers else None
        if peers is not None and args.name not in peers:
            raise ValueError(
                f"--peers must include this backend's own name "
                f"({args.name!r}); got {sorted(peers)}"
            )
    except ValueError as exc:
        parser.error(str(exc))
    return asyncio.run(
        _serve(
            config, args.host, args.port,
            journal_dir=None if args.no_jobs else args.journal_dir,
            jobs_config=jobs_config,
            drain_timeout_s=args.drain_timeout,
            name=args.name,
            peers=peers,
            peer_timeout_s=args.peer_timeout,
            binary_wire=args.wire != "json",
            advertise_host=args.advertise_host,
        )
    )


def parse_peers(spec: str) -> dict[str, tuple[str, int]]:
    """Parse ``'b0=127.0.0.1:7001,b1=127.0.0.1:7002'`` into
    ``{name: (host, port)}``."""
    peers: dict[str, tuple[str, int]] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, addr = item.partition("=")
        host, sep2, port = addr.rpartition(":")
        if not sep or not sep2 or not name or not host:
            raise ValueError(
                f"bad peer {item!r}: expected NAME=HOST:PORT"
            )
        try:
            peers[name] = (host, int(port))
        except ValueError:
            raise ValueError(f"bad peer port in {item!r}") from None
    if not peers:
        raise ValueError("--peers given but no peers parsed")
    return peers


async def _serve(
    config: ServeConfig,
    host: str,
    port: int,
    journal_dir: Path | None = None,
    jobs_config: JobsConfig | None = None,
    drain_timeout_s: float | None = None,
    name: str = "serve",
    peers: dict[str, tuple[str, int]] | None = None,
    peer_timeout_s: float = 2.0,
    binary_wire: bool = True,
    advertise_host: str | None = None,
) -> int:
    frontend = CampaignFrontEnd(config)
    if peers is not None:
        # Cluster shard: a local cache miss asks the key's home shard
        # (compute-free probe) before paying for the computation.
        from repro.serve.router import CachePeerFill, HashRing

        frontend.peer_fill = CachePeerFill(
            HashRing(sorted(peers)), name, peers,
            probe_timeout_s=peer_timeout_s,
        )
    manager = None
    if journal_dir is not None:
        # The job tier checkpoints into the SAME cache directory the
        # query path serves hits from: a unit computed for a job
        # answers later queries, and vice versa.
        manager = JobManager(
            JobJournal(journal_dir),
            ResultCache(config.cache_dir)
            if config.cache_dir is not None else None,
            frontend.execute_units,
            jobs_config or JobsConfig(seed=config.seed),
        )
    server = ServeServer(
        frontend, host, port,
        jobs_manager=manager, drain_timeout_s=drain_timeout_s,
        name=name, binary_wire=binary_wire,
        advertise_host=advertise_host,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, server.request_shutdown)
    recovered = ""
    if server.recovered is not None and server.recovered["restored"]:
        recovered = (
            f" — recovered {server.recovered['restored']} job(s), "
            f"{server.recovered['resumed_units']} unit(s) from cache"
        )
    shard = ""
    if peers is not None:
        shard = f", shard={name}/{len(peers)}"
    print(
        f"repro serve: listening on {server.host}:{server.port} "
        f"(jobs={config.jobs}, queue_limit={config.queue_limit}, "
        f"cache={'off' if config.cache_dir is None else config.cache_dir}, "
        f"journal={'off' if journal_dir is None else journal_dir}, "
        f"wire={'json+binary1' if binary_wire else 'json'}"
        f"{shard}){recovered}",
        flush=True,
    )
    await server.serve_until_shutdown()
    snap = frontend.stats.snapshot()
    jobs_note = ""
    if manager is not None:
        t = manager.totals
        jobs_note = (
            f"; jobs: {t['submitted']} submitted, {t['done']} done, "
            f"{t['units_done']} unit(s)"
        )
    print(
        "repro serve: drained and stopped — "
        f"{snap['accepted']} accepted, {snap['rejected']} rejected, "
        f"hit ratio {snap['hit_ratio']:.1%} over "
        f"{snap['batches']} batch(es)" + jobs_note
    )
    return 0


def loadtest_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Seeded open-loop load generator for 'repro serve'.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="server address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, required=True,
        help="server port (from the serve 'listening on' line)",
    )
    parser.add_argument(
        "--requests", type=int, default=2000, metavar="N",
        help="total requests to offer (default: 2000)",
    )
    parser.add_argument(
        "--rate", type=float, default=500.0, metavar="RPS",
        help="offered Poisson arrival rate, requests/s (default: 500)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload + arrival-process seed (default: 0)",
    )
    parser.add_argument(
        "--hot-fraction", type=float, default=0.9, metavar="F",
        help="fraction of requests drawn from the hot set (default: 0.9)",
    )
    parser.add_argument(
        "--jobs", type=jobs_count, default=1,
        help="concurrent client connections sharing the offered rate "
        "(default: 1)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 600 requests at 600 rps",
    )
    parser.add_argument(
        "--max-rate", action="store_true",
        help="closed-loop saturation mode: ramp the offered rate until "
        "p99 degrades and report max_sustainable_ops_per_s (ignores "
        "--requests/--rate/--quick sizing)",
    )
    parser.add_argument(
        "--start-rate", type=float, default=500.0, metavar="RPS",
        help="--max-rate: first ramp step's offered rate (default: 500)",
    )
    parser.add_argument(
        "--growth", type=float, default=2.0, metavar="X",
        help="--max-rate: offered-rate multiplier per step (default: 2)",
    )
    parser.add_argument(
        "--step-seconds", type=float, default=0.5, metavar="S",
        help="--max-rate: offered load per step, in seconds of traffic "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=10, metavar="N",
        help="--max-rate: ramp steps before giving up (default: 10)",
    )
    parser.add_argument(
        "--p99-slo", type=float, default=0.05, metavar="S",
        help="--max-rate: p99 latency beyond which a step counts as "
        "degraded (default: 0.05)",
    )
    parser.add_argument(
        "--direct", action="store_true",
        help="ring-aware data path: learn the cluster topology via "
        "'locate' and send each query straight to its home shard, "
        "falling back to the router only on failure (works in both "
        "open-loop and --max-rate modes; against a bare server it "
        "degenerates to a one-node topology)",
    )
    parser.add_argument(
        "--wire", choices=("json", "binary"), default="json",
        help="client framing: 'binary' negotiates binary1 per "
        "connection (a JSON-only server downgrades the run cleanly); "
        "default json",
    )
    parser.add_argument(
        "--assert-hit-ratio", type=float, default=None, metavar="X",
        help="exit 1 unless the coalesce+cache hit ratio reaches X",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="send the server a graceful-shutdown op after the run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of the text summary",
    )
    args = parser.parse_args(argv)
    if args.max_rate:
        report = asyncio.run(
            run_saturation(
                args.host,
                args.port,
                seed=args.seed,
                hot_fraction=args.hot_fraction,
                connections=max(args.jobs, 2),
                start_rate=args.start_rate,
                growth=args.growth,
                step_seconds=args.step_seconds,
                max_steps=args.max_steps,
                p99_limit_s=args.p99_slo,
                direct=args.direct,
                wire=args.wire,
            )
        )
        if args.shutdown:
            asyncio.run(request_shutdown(args.host, args.port))
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_saturation_report(report))
        return 0 if report["max_sustainable_ops_per_s"] > 0 else 1
    n_requests = 600 if args.quick else args.requests
    rate = 600.0 if args.quick else args.rate
    report = asyncio.run(
        run_loadtest_fleet(
            args.host,
            args.port,
            n_requests=n_requests,
            rate=rate,
            seed=args.seed,
            hot_fraction=args.hot_fraction,
            connections=args.jobs,
            shutdown_after=args.shutdown,
            direct=args.direct,
            wire=args.wire,
        )
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if report["errors"]:
        print(f"loadtest: FAIL — {report['errors']} error responses")
        return 1
    if (
        args.assert_hit_ratio is not None
        and report["hit_ratio"] < args.assert_hit_ratio
    ):
        print(
            f"loadtest: FAIL — hit ratio {report['hit_ratio']:.1%} "
            f"below the required {args.assert_hit_ratio:.1%}"
        )
        return 1
    return 0
