"""Durable multi-tenant campaign jobs: submit now, survive restarts.

A *job* is a named batch of campaign work units (an explicit unit
list, or a whole figure campaign decomposed via
:func:`repro.parallel.units.campaign_units`) owned by a *tenant*.
Where the query path (:class:`~repro.serve.frontend.CampaignFrontEnd`)
answers within a micro-batch or not at all, the job tier accepts
minutes of work and guarantees it survives the process:

* **Durability** — every submit, terminal transition and quarantine is
  appended to a crash-safe :class:`~repro.serve.journal.JobJournal`
  before it is acknowledged.  Unit completions are journaled too, but
  batched: the *authoritative* checkpoint for a completed unit is its
  value landing in the content-addressed result cache, so losing a few
  unit records to a crash costs a cache probe, not recomputation.
* **Checkpoint/restart** — :meth:`JobManager.recover` replays the
  journal, then probes the cache for every pending unit of every
  non-terminal job (:meth:`ResultCache.get_many`); whatever already
  landed is marked done (counted as ``resumed_units``) and only the
  remainder re-enters dispatch.  This is the paper's Section 6
  discipline — commodity-SoC clusters are HPC-viable only with
  checkpoint/restart baked in — applied to our own serving layer.
* **Journal-flush batching** — fsync per unit would dominate cheap
  units.  The flush cadence reuses
  :meth:`repro.fault.checkpoint.CheckpointPolicy.interval_for`: with
  the observed fsync cost as the checkpoint cost and a configured
  process MTBF, Daly's interval says how much work may sit unflushed;
  divided by the observed unit cost that becomes a records-per-fsync
  batch size.
* **Fair scheduling** — dispatch is round-robin across tenants, and
  within a tenant oldest job first (the oldest-first discipline of
  :meth:`repro.cluster.slurm.SlurmScheduler.drain`), so one tenant's
  mega-job cannot starve another's smoke test.  Per-tenant quotas
  bound queued units; over quota, ``submit`` raises
  :class:`~repro.serve.frontend.Overloaded` with a retry hint while
  other tenants are untouched.
* **Retry and quarantine** — a failed unit retries with exponential
  backoff up to ``max_attempts``; then it is quarantined (journaled)
  and the job completes as ``failed`` with partial results, instead of
  one poison unit wedging the queue forever.

Observability: ``serve.jobs.*`` totals (submitted/done/failed/
cancelled/units_done/units_retried/units_quarantined/resumed_units)
and a ``serve.jobs.batch`` span per dispatched batch.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Awaitable, Callable

from repro.fault.checkpoint import CheckpointPolicy
from repro.obs.recorder import current as _obs_current
from repro.parallel.cache import MISS, ResultCache, unit_key
from repro.parallel.runner import UnitFailure
from repro.parallel.units import WorkUnit
from repro.serve.frontend import UNIT_KINDS, Overloaded
from repro.serve.journal import DEFAULT_ROTATE_BYTES, JobJournal

# Job states.  queued -> running -> done | failed | cancelled.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_CANCELLED})

# Unit states within a job.
UNIT_PENDING = "pending"
UNIT_DONE = "done"
UNIT_QUARANTINED = "quarantined"


@dataclass
class JobsConfig:
    """Tunables for the job tier."""

    tenant_quota_units: int = 4096   #: max queued units per tenant
    max_attempts: int = 3            #: unit attempts before quarantine
    retry_backoff_s: float = 0.05    #: base of the exponential backoff
    backoff_cap_s: float = 5.0       #: backoff ceiling
    batch_units: int = 16            #: units per dispatched batch
    process_mtbf_s: float = 1800.0   #: assumed serve-process MTBF
    keep_terminal: int = 64          #: terminal jobs kept for status
    rotate_bytes: int = DEFAULT_ROTATE_BYTES  #: journal compaction bound
    seed: int = 0                    #: default study seed for jobs

    def __post_init__(self) -> None:
        if self.tenant_quota_units < 1:
            raise ValueError("tenant_quota_units must be at least 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.batch_units < 1:
            raise ValueError("batch_units must be at least 1")
        if self.process_mtbf_s <= 0:
            raise ValueError("process_mtbf_s must be positive")
        if self.keep_terminal < 0:
            raise ValueError("keep_terminal must be non-negative")


@dataclass
class _Unit:
    """One unit's in-job lifecycle state."""

    unit: WorkUnit
    state: str = UNIT_PENDING
    attempts: int = 0
    not_before: float = 0.0          #: monotonic retry-eligibility time
    error: str | None = None
    value: Any = None                #: in-memory copy (cache is durable)
    have_value: bool = False


@dataclass
class Job:
    """One submitted job and its unit ledger."""

    job_id: str
    tenant: str
    units: list[_Unit]
    seed: int
    order: int                       #: submission order (fair dispatch)
    created_unix: float
    state: str = JOB_QUEUED
    resumed_units: int = 0           #: pending units revived from cache

    @property
    def counts(self) -> dict[str, int]:
        done = sum(1 for u in self.units if u.state == UNIT_DONE)
        quarantined = sum(
            1 for u in self.units if u.state == UNIT_QUARANTINED
        )
        return {
            "n_units": len(self.units),
            "done": done,
            "quarantined": quarantined,
            "pending": len(self.units) - done - quarantined,
        }

    def pending_units(self) -> int:
        return self.counts["pending"]

    def status_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "seed": self.seed,
            "created_unix": self.created_unix,
            "resumed_units": self.resumed_units,
            **self.counts,
        }
        quarantined = [
            {"index": i, "unit": u.unit.label(), "error": u.error}
            for i, u in enumerate(self.units)
            if u.state == UNIT_QUARANTINED
        ]
        if quarantined:
            doc["quarantined_units"] = quarantined
        return doc


def campaign_job_units(quick: bool = True) -> list[dict[str, Any]]:
    """The unit specs for a whole figure campaign (``submit`` payload
    for a ``campaign`` job) — the same decomposition ``repro all
    --jobs N`` shards, expressed as wire-shaped dicts."""
    from repro.cluster.cluster import tibidabo
    from repro.core.study import FIG6_FULL_COUNTS, FIG6_QUICK_COUNTS
    from repro.parallel.units import campaign_units

    counts = FIG6_QUICK_COUNTS if quick else FIG6_FULL_COUNTS
    units = campaign_units(quick, tibidabo(max(counts)))
    return [{"kind": u.kind, "params": u.params} for u in units]


class JobManager:
    """The durable queue: journal + cache + fair dispatch.

    :param journal: the write-ahead log (owns durability).
    :param cache: the content-addressed result cache completed unit
        values land in — the restart checkpoint store.  ``None`` keeps
        values only in memory (tests; resume degrades to recompute).
    :param execute: ``async (units, seed) -> values`` — production
        wiring is :meth:`CampaignFrontEnd.execute_units`, so job
        batches serialise with query micro-batches on one executor
        thread.  Failed units come back as
        :class:`~repro.parallel.runner.UnitFailure` slots.
    :param policy: checkpoint-cost arithmetic for journal-flush
        batching; the default derives the Daly interval from the
        observed fsync cost and ``config.process_mtbf_s``.
    """

    def __init__(
        self,
        journal: JobJournal,
        cache: ResultCache | None,
        execute: Callable[[list[WorkUnit], int], Awaitable[list[Any]]],
        config: JobsConfig | None = None,
        policy: CheckpointPolicy | None = None,
    ) -> None:
        self.journal = journal
        self.cache = cache
        self.config = config or JobsConfig()
        self._execute = execute
        self._policy = policy or CheckpointPolicy(
            checkpoint_cost_s=1e-3, restart_cost_s=1.0
        )
        self.jobs: dict[str, Job] = {}
        self.totals: dict[str, int] = {
            "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
            "units_done": 0, "units_retried": 0,
            "units_quarantined": 0, "resumed_units": 0,
        }
        self._order = itertools.count()
        self._rr_offset = 0              # tenant round-robin cursor
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._running = False
        self._parked = False
        self._t0 = time.monotonic()
        # Flush batching: EWMA of fsync cost and unit cost feed the
        # CheckpointPolicy arithmetic; _unflushed counts unit records
        # appended since the last fsync.
        self._fsync_cost_s = 1e-3
        self._unit_cost_s = 0.05
        self._unflushed = 0

    # -- obs helpers -------------------------------------------------------
    def _bump(self, name: str, value: int = 1) -> None:
        self.totals[name] = self.totals.get(name, 0) + value
        rec = _obs_current()
        if rec is not None:
            rec.bump(f"serve.jobs.{name}", value)

    def _clock(self) -> float:
        return time.monotonic() - self._t0

    # -- durability helpers ------------------------------------------------
    def _flush_every_units(self) -> int:
        """How many unit-done records may sit unflushed: the Daly
        interval (observed fsync cost as checkpoint cost, configured
        process MTBF) divided by the observed unit cost — cheap units
        amortise one fsync over many records, expensive units flush
        nearly every time."""
        policy = self._policy
        if policy.interval_s is None:
            policy = replace(
                policy, checkpoint_cost_s=max(self._fsync_cost_s, 1e-6)
            )
        interval = policy.interval_for(self.config.process_mtbf_s)
        per_flush = int(interval / max(self._unit_cost_s, 1e-6))
        return max(1, min(per_flush, 256))

    def _journal_flush(self, force: bool = False) -> None:
        if not force and self._unflushed < self._flush_every_units():
            return
        t0 = time.monotonic()
        self.journal.flush()
        cost = time.monotonic() - t0
        self._fsync_cost_s = 0.8 * self._fsync_cost_s + 0.2 * cost
        self._unflushed = 0

    def _append(self, doc: dict[str, Any], flush: bool = True) -> None:
        self.journal.append(doc, flush=False)
        if flush:
            self._journal_flush(force=True)
        else:
            self._unflushed += 1
            self._journal_flush(force=False)

    # -- submission --------------------------------------------------------
    def _queued_units(self, tenant: str) -> int:
        return sum(
            job.pending_units()
            for job in self.jobs.values()
            if job.tenant == tenant and job.state not in TERMINAL_STATES
        )

    def submit(
        self,
        tenant: str,
        unit_specs: list[dict[str, Any]],
        seed: int | None = None,
        job_id: str | None = None,
    ) -> Job:
        """Accept a job (durably) or raise.

        Raises ``ValueError`` for a malformed spec and
        :class:`Overloaded` (``reason="tenant_quota"``) when the
        tenant's queued-unit quota would be exceeded — with a retry
        hint scaled by that tenant's backlog at the observed unit cost,
        and zero effect on other tenants.
        """
        if not unit_specs:
            raise ValueError("a job needs at least one unit")
        if not tenant or not isinstance(tenant, str):
            raise ValueError("tenant must be a non-empty string")
        units = []
        for spec in unit_specs:
            kind = spec.get("kind")
            params = spec.get("params", {})
            if kind not in UNIT_KINDS:
                raise ValueError(
                    f"unknown work-unit kind {kind!r} "
                    f"(one of: {', '.join(UNIT_KINDS)})"
                )
            if not isinstance(params, dict):
                raise ValueError("unit params must be an object")
            units.append(_Unit(WorkUnit(kind, dict(params))))
        backlog = self._queued_units(tenant)
        if backlog + len(units) > self.config.tenant_quota_units:
            raise Overloaded(
                max(0.01, backlog * self._unit_cost_s),
                reason="tenant_quota",
            )
        job = Job(
            job_id=job_id or uuid.uuid4().hex[:12],
            tenant=tenant,
            units=units,
            seed=self.config.seed if seed is None else seed,
            order=next(self._order),
            created_unix=time.time(),
        )
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self.jobs[job.job_id] = job
        self._append(self._submit_record(job), flush=True)
        self._bump("submitted")
        self._wake.set()
        return job

    @staticmethod
    def _submit_record(job: Job) -> dict[str, Any]:
        return {
            "t": "submit",
            "job": job.job_id,
            "tenant": job.tenant,
            "seed": job.seed,
            "created": job.created_unix,
            "units": [
                {"kind": u.unit.kind, "params": u.unit.params}
                for u in job.units
            ],
        }

    # -- queries -----------------------------------------------------------
    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str | None = None) -> Any:
        if job_id is not None:
            return self.get(job_id).status_doc()
        return [
            job.status_doc()
            for job in sorted(self.jobs.values(), key=lambda j: j.order)
        ]

    def result(self, job_id: str) -> dict[str, Any]:
        """The per-unit values of a terminal job.

        Values come from memory when this process computed them, else
        from the cache (the restart case).  A done unit whose cache
        entry was since evicted reports ``"expired"`` — resubmit to
        recompute it.
        """
        job = self.get(job_id)
        if job.state not in TERMINAL_STATES:
            raise JobNotReady(job.state)
        out = []
        missing_keys = [
            unit_key(u.unit.kind, u.unit.params, job.seed)
            for u in job.units
            if u.state == UNIT_DONE and not u.have_value
        ]
        fetched: dict[str, Any] = {}
        if missing_keys and self.cache is not None:
            fetched = dict(
                zip(missing_keys, self.cache.get_many(missing_keys))
            )
        for u in job.units:
            entry: dict[str, Any] = {
                "kind": u.unit.kind,
                "params": u.unit.params,
                "state": u.state,
            }
            if u.state == UNIT_DONE:
                if u.have_value:
                    entry["value"] = u.value
                else:
                    value = fetched.get(
                        unit_key(u.unit.kind, u.unit.params, job.seed),
                        MISS,
                    )
                    if value is MISS:
                        entry["state"] = "expired"
                    else:
                        entry["value"] = value
            elif u.error is not None:
                entry["error"] = u.error
            out.append(entry)
        return {
            "job_id": job.job_id,
            "state": job.state,
            "seed": job.seed,
            "units": out,
        }

    def cancel(self, job_id: str) -> bool:
        """Cancel a non-terminal job (durably).  Returns ``False`` if
        it was already terminal.  A batch in flight finishes on the
        worker (its values still land in the cache) but the job stays
        cancelled."""
        job = self.get(job_id)
        if job.state in TERMINAL_STATES:
            return False
        self._set_state(job, JOB_CANCELLED)
        self._wake.set()
        return True

    # -- recovery ----------------------------------------------------------
    def recover(self) -> dict[str, int]:
        """Rebuild state from the journal, then resume from the cache.

        Replay is tolerant by construction (the journal truncates its
        own corrupt tail); records that reference unknown jobs or
        out-of-range units are skipped.  Every pending unit of every
        non-terminal job is probed against the cache in one batched
        ``get_many``; hits become done units (``resumed_units``) —
        *that* is the checkpoint/restart contract: unit completion was
        the checkpoint, the probe is the restore.
        """
        records = self.journal.replay()
        restored = 0
        for doc in records:
            self._apply_record(doc)
        resumed = 0
        for job in self.jobs.values():
            if job.state in TERMINAL_STATES:
                continue
            restored += 1
            job.state = JOB_QUEUED  # a crashed "running" job re-queues
            resumed += self._resume_from_cache(job)
            self._finish_if_complete(job)
        if self.jobs:
            self._order = itertools.count(
                max(j.order for j in self.jobs.values()) + 1
            )
        self._bump("resumed_units", resumed) if resumed else None
        self._journal_flush(force=True)
        self._maybe_rotate(force=True)
        self._wake.set()
        return {
            "jobs": len(self.jobs),
            "restored": restored,
            "resumed_units": resumed,
        }

    def _apply_record(self, doc: dict[str, Any]) -> None:
        kind = doc.get("t")
        if kind == "submit":
            units = doc.get("units")
            job_id = doc.get("job")
            if not isinstance(units, list) or not units \
                    or not isinstance(job_id, str) or job_id in self.jobs:
                return
            try:
                parsed = [
                    _Unit(WorkUnit(u["kind"], dict(u["params"])))
                    for u in units
                ]
            except (KeyError, TypeError):
                return
            self.jobs[job_id] = Job(
                job_id=job_id,
                tenant=str(doc.get("tenant", "default")),
                units=parsed,
                seed=int(doc.get("seed", 0)),
                order=next(self._order),
                created_unix=float(doc.get("created", 0.0)),
            )
        elif kind == "unit":
            job = self.jobs.get(doc.get("job"))
            index = doc.get("i")
            if job is None or not isinstance(index, int) \
                    or not 0 <= index < len(job.units):
                return
            unit = job.units[index]
            state = doc.get("state")
            if state == UNIT_DONE:
                unit.state = UNIT_DONE
            elif state == UNIT_QUARANTINED:
                unit.state = UNIT_QUARANTINED
                unit.error = doc.get("error")
        elif kind == "state":
            job = self.jobs.get(doc.get("job"))
            state = doc.get("state")
            if job is not None and state in TERMINAL_STATES:
                job.state = state

    def _resume_from_cache(self, job: Job) -> int:
        if self.cache is None:
            return 0
        pending = [
            (i, u) for i, u in enumerate(job.units)
            if u.state == UNIT_PENDING
        ]
        if not pending:
            return 0
        hits = self.cache.get_many(
            [
                unit_key(u.unit.kind, u.unit.params, job.seed)
                for _, u in pending
            ]
        )
        resumed = 0
        for (i, unit), value in zip(pending, hits):
            if value is MISS:
                continue
            unit.state = UNIT_DONE
            unit.value = value
            unit.have_value = True
            resumed += 1
            self._append(
                {"t": "unit", "job": job.job_id, "i": i,
                 "state": UNIT_DONE},
                flush=False,
            )
        job.resumed_units += resumed
        return resumed

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self._task is None:
            self._running = True
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Stop dispatching and park incomplete jobs in the journal.

        Unlike the query path, nothing is lost on a timeout: jobs are
        durable, so parking is a journal flush plus stopping the loop —
        a restarted manager resumes them from the cache.  Returns
        ``True`` when the in-flight batch (if any) completed within the
        bound, ``False`` when it was abandoned to the executor.
        """
        self._parked = True
        self._running = False
        self._wake.set()
        drained = True
        if self._task is not None:
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._task), timeout=timeout_s
                )
            except asyncio.TimeoutError:
                drained = False
                self._task.cancel()
                try:
                    await self._task
                except (asyncio.CancelledError, Exception):
                    pass
            self._task = None
        self._journal_flush(force=True)
        return drained

    def close(self) -> None:
        self.journal.close()

    # -- dispatch ----------------------------------------------------------
    def _eligible(self, job: Job, now: float) -> list[int]:
        return [
            i for i, u in enumerate(job.units)
            if u.state == UNIT_PENDING and u.not_before <= now
        ]

    def _next_batch(self) -> tuple[Job, list[int]] | None:
        """Fair pick: tenants in round-robin rotation; within the
        chosen tenant, oldest job first (SLURM's oldest-first requeue
        discipline); within a job, unit order.  One batch draws from
        one job, so values map back trivially and seeds never mix."""
        now = time.monotonic()
        tenants = sorted(
            {
                job.tenant
                for job in self.jobs.values()
                if job.state not in TERMINAL_STATES
            }
        )
        if not tenants:
            return None
        n = len(tenants)
        for hop in range(n):
            tenant = tenants[(self._rr_offset + hop) % n]
            jobs = sorted(
                (
                    j for j in self.jobs.values()
                    if j.tenant == tenant
                    and j.state not in TERMINAL_STATES
                ),
                key=lambda j: j.order,
            )
            for job in jobs:
                eligible = self._eligible(job, now)
                if eligible:
                    self._rr_offset = (self._rr_offset + hop + 1) % n
                    return job, eligible[: self.config.batch_units]
        return None

    def _retry_delay(self) -> float | None:
        """Seconds until the nearest backoff expiry, or ``None``."""
        now = time.monotonic()
        times = [
            u.not_before
            for job in self.jobs.values()
            if job.state not in TERMINAL_STATES
            for u in job.units
            if u.state == UNIT_PENDING
        ]
        if not times:
            return None
        return max(0.0, min(times) - now)

    async def _dispatch_loop(self) -> None:
        while self._running:
            picked = self._next_batch()
            if picked is None:
                delay = self._retry_delay()
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(),
                        timeout=delay if delay and delay > 0 else None,
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            job, indices = picked
            await self._run_batch(job, indices)

    async def _run_batch(self, job: Job, indices: list[int]) -> None:
        job.state = JOB_RUNNING
        units = [job.units[i].unit for i in indices]
        rec = _obs_current()
        t0 = self._clock()
        wall0 = time.monotonic()
        try:
            values = await self._execute(units, job.seed)
            if len(values) != len(units):
                raise RuntimeError(
                    f"executor returned {len(values)} values for "
                    f"{len(units)} units"
                )
        except Exception as exc:  # noqa: BLE001 - batch-level containment
            values = [
                UnitFailure(f"{type(exc).__name__}: {exc}")
                for _ in units
            ]
        wall = time.monotonic() - wall0
        if units:
            per_unit = wall / len(units)
            self._unit_cost_s = 0.8 * self._unit_cost_s + 0.2 * per_unit
        if job.state == JOB_CANCELLED:
            return  # cancelled mid-flight; values are in the cache
        now = time.monotonic()
        for i, value in zip(indices, values):
            unit = job.units[i]
            if isinstance(value, UnitFailure):
                unit.attempts += 1
                unit.error = value.error
                if unit.attempts >= self.config.max_attempts:
                    unit.state = UNIT_QUARANTINED
                    self._bump("units_quarantined")
                    self._append(
                        {"t": "unit", "job": job.job_id, "i": i,
                         "state": UNIT_QUARANTINED, "error": unit.error},
                        flush=True,
                    )
                else:
                    self._bump("units_retried")
                    backoff = min(
                        self.config.retry_backoff_s
                        * (2 ** (unit.attempts - 1)),
                        self.config.backoff_cap_s,
                    )
                    unit.not_before = now + backoff
            else:
                unit.state = UNIT_DONE
                unit.value = value
                unit.have_value = True
                if self.cache is not None:
                    # Write-through: the cache entry IS the restart
                    # checkpoint, so it must not depend on the executor
                    # having cached (the production executor does; the
                    # duplicate put is an atomic no-op overwrite).
                    self.cache.put(
                        unit_key(unit.unit.kind, unit.unit.params, job.seed),
                        value,
                        kind=unit.unit.kind,
                    )
                self._bump("units_done")
                self._append(
                    {"t": "unit", "job": job.job_id, "i": i,
                     "state": UNIT_DONE},
                    flush=False,
                )
        if rec is not None:
            rec.span(
                "serve.jobs.batch", "serve", t0, self._clock(),
                units=len(units), tenant=job.tenant,
            )
        self._finish_if_complete(job)
        if job.state == JOB_RUNNING:
            job.state = JOB_QUEUED

    def _finish_if_complete(self, job: Job) -> None:
        counts = job.counts
        if counts["pending"] or job.state in TERMINAL_STATES:
            return
        self._set_state(
            job, JOB_FAILED if counts["quarantined"] else JOB_DONE
        )

    def _set_state(self, job: Job, state: str) -> None:
        job.state = state
        self._append(
            {"t": "state", "job": job.job_id, "state": state}, flush=True
        )
        self._bump(state)
        self._maybe_rotate()

    # -- compaction --------------------------------------------------------
    def _maybe_rotate(self, force: bool = False) -> None:
        if not force and self.journal.size_bytes < self.config.rotate_bytes:
            self._prune_terminal()
            return
        self._prune_terminal()
        docs: list[dict[str, Any]] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.order):
            docs.append(self._submit_record(job))
            for i, unit in enumerate(job.units):
                if unit.state == UNIT_DONE:
                    docs.append(
                        {"t": "unit", "job": job.job_id, "i": i,
                         "state": UNIT_DONE}
                    )
                elif unit.state == UNIT_QUARANTINED:
                    docs.append(
                        {"t": "unit", "job": job.job_id, "i": i,
                         "state": UNIT_QUARANTINED, "error": unit.error}
                    )
            if job.state in TERMINAL_STATES:
                docs.append(
                    {"t": "state", "job": job.job_id, "state": job.state}
                )
        self.journal.rotate(docs)
        self._unflushed = 0

    def _prune_terminal(self) -> None:
        terminal = sorted(
            (j for j in self.jobs.values() if j.state in TERMINAL_STATES),
            key=lambda j: j.order,
        )
        for job in terminal[: max(0, len(terminal) - self.config.keep_terminal)]:
            del self.jobs[job.job_id]


class JobNotReady(RuntimeError):
    """``result`` was asked for a job that is not terminal yet."""

    def __init__(self, state: str) -> None:
        super().__init__(f"job is {state}, not terminal")
        self.state = state
