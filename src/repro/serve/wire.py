"""Binary wire framing for the serve tier (``binary1``).

JSON-lines stays the compatibility skin and the default: every frame on
a fresh connection is a JSON object terminated by ``\\n``.  A client
that wants the binary wire either

* sends ``{"op": "hello", "wire": "binary1"}`` as JSON and waits for
  the ack ``{"id": ..., "ok": true, "wire": "binary1"}`` (also JSON) —
  everything after the ack, in BOTH directions, is binary; a server
  that answers anything else (an old server's ``bad_request`` for the
  unknown op, or ``"wire": "json"``) leaves the connection on
  JSON-lines, which is the sanctioned downgrade; or
* opens with the magic byte ``0xAB`` — no JSON object can start with
  it, so a binary-capable server sniffs the first byte of a connection
  and switches immediately (a ``--wire json`` server closes instead).

Frame layout (all integers big-endian)::

    +------+------+----------+=================+
    | 0xAB | type | len: u32 | payload (len B) |
    +------+------+----------+=================+

Three frame types:

* ``0x01 DOC`` — one request/response document in the tag codec below.
  Semantically identical to one JSON line; every op travels this way
  unless a fast path applies.
* ``0x02 QREQ`` — query fast path, request direction: ``id: u64``,
  ``flags: u8`` (bit0 = ``via: "direct"``, bit1 = ``redirect: true``),
  ``kind: u8`` (index into the unit-kind table), then the params dict
  in the tag codec.
* ``0x03 QRESP`` — query fast path, response direction: ``id: u64``,
  ``latency_s: f64``, ``served: u8`` (index into the served table),
  then the value in the tag codec.  The value blob is memoised by
  object identity on the sending side and by blob bytes on the
  receiving side — campaign values are content-addressed and immutable,
  so a hot key's value crosses the wire without re-encoding.

Tag codec (a msgpack-shaped subset closed over the JSON value domain;
``decode(encode(v)) == v`` exactly, including float bit patterns)::

    0xc0 null          0xc2 false          0xc3 true
    0xcb float: f64    0xd3 int: i64       0xd4 bigint: u32 len + signed bytes
    0xdb str: u32 len + utf8               0xdd list: u32 count + items
    0xdf dict: u32 count + sorted (str key, value) pairs

Dict keys are coerced exactly as ``json.dumps`` coerces them
(``True`` -> ``"true"``, ``3`` -> ``"3"``, ...) and sorted, so the
encoding is canonical: equal values yield equal bytes, which is what
makes the receive-side blob memo sound.

Error surface: a frame whose *header* is unusable (bad magic, length
over :data:`MAX_FRAME_LEN`) raises :class:`WireError` — the stream can
never resynchronise, the connection must close.  A frame whose header
parsed but whose *payload* is undecodable raises :class:`BadFrame` —
exactly ``len`` bytes were consumed, the stream is still framed, and
the server answers ``bad_request`` and keeps reading.

Version/compat rules: ``binary1`` is the only binary version.  A hello
offering anything else is acked with ``"wire": "json"`` (negotiate down
to the best both sides speak); unknown frame *types* under ``binary1``
are a :class:`BadFrame` (skippable), unknown codec *tags* likewise.
New frame types or tags mean a ``binary2`` hello, never a silent
reinterpretation of ``binary1`` bytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from collections import OrderedDict
from typing import Any

from repro.serve.frontend import UNIT_KINDS

WIRE_BINARY1 = "binary1"
WIRE_JSON = "json"

MAGIC = 0xAB
FRAME_DOC = 0x01
FRAME_QREQ = 0x02
FRAME_QRESP = 0x03

#: Hard per-frame payload bound; anything larger is a framing error
#: (campaign values are a few hundred bytes — 64 MiB is generous).
MAX_FRAME_LEN = 64 * 1024 * 1024

#: Bytes pulled from the socket per read in binary mode; several frames
#: usually arrive per chunk, so the per-frame await cost amortises.
READ_CHUNK = 65536

_HEADER = struct.Struct(">BBI")   # magic, frame type, payload length
_QREQ = struct.Struct(">QBB")     # id, flags, kind code
_QRESP = struct.Struct(">QdB")    # id, latency_s, served code

_QREQ_FLAG_DIRECT = 0x01
_QREQ_FLAG_REDIRECT = 0x02

#: Kind/served tables for the fast-path frames.  Indexes are part of
#: the ``binary1`` wire contract: append-only.
KIND_CODES = {kind: i for i, kind in enumerate(UNIT_KINDS)}
SERVED_ORDER = ("cache", "coalesced", "computed", "peer")
SERVED_CODES = {served: i for i, served in enumerate(SERVED_ORDER)}

#: The fields a query doc may carry and still take the QREQ fast path —
#: anything extra must travel as a DOC frame so no field is dropped.
_QREQ_FIELDS = frozenset(("op", "id", "kind", "params", "via", "redirect"))

_U64_MAX = (1 << 64) - 1

_TAG_NIL = 0xC0
_TAG_FALSE = 0xC2
_TAG_TRUE = 0xC3
_TAG_FLOAT = 0xCB
_TAG_INT64 = 0xD3
_TAG_BIGINT = 0xD4
_TAG_STR = 0xDB
_TAG_LIST = 0xDD
_TAG_DICT = 0xDF

_U32 = struct.Struct(">I")
_TL = struct.Struct(">BI")   # tag + u32 length/count
_TF = struct.Struct(">Bd")   # tag + f64
_TI = struct.Struct(">Bq")   # tag + i64
_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")


class WireError(Exception):
    """Unrecoverable framing damage: the connection must close."""


class BadFrame(Exception):
    """One undecodable frame; the stream itself is still framed."""


def _coerce_key(key: Any) -> str:
    """Coerce a non-str dict key exactly as ``json.dumps`` would."""
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return json.dumps(key)
    raise ValueError(f"key {key!r} is not JSON-serialisable")


def _enc(obj: Any, out: bytearray) -> None:
    if isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += _TL.pack(_TAG_STR, len(raw))
        out += raw
    elif obj is None:
        out.append(_TAG_NIL)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif isinstance(obj, float):
        out += _TF.pack(_TAG_FLOAT, obj)
    elif isinstance(obj, int):
        try:
            out += _TI.pack(_TAG_INT64, obj)
        except struct.error:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out += _TL.pack(_TAG_BIGINT, len(raw))
            out += raw
    elif isinstance(obj, dict):
        items = sorted(
            (k if isinstance(k, str) else _coerce_key(k), v)
            for k, v in obj.items()
        )
        out += _TL.pack(_TAG_DICT, len(items))
        for key, value in items:
            raw = key.encode("utf-8")
            out += _TL.pack(_TAG_STR, len(raw))
            out += raw
            _enc(value, out)
    elif isinstance(obj, (list, tuple)):
        out += _TL.pack(_TAG_LIST, len(obj))
        for item in obj:
            _enc(item, out)
    else:
        raise ValueError(f"value {obj!r} is not JSON-serialisable")


def encode_value(obj: Any) -> bytes:
    """One value in the tag codec; raises ``ValueError`` off-domain."""
    out = bytearray()
    _enc(obj, out)
    return bytes(out)


def _dec(buf: bytes, off: int) -> tuple[Any, int]:
    tag = buf[off]
    off += 1
    if tag == _TAG_STR:
        (n,) = _U32.unpack_from(buf, off)
        off += 4
        end = off + n
        if end > len(buf):
            raise ValueError("truncated string")
        return buf[off:end].decode("utf-8"), end
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(buf, off)
        return value, off + 8
    if tag == _TAG_INT64:
        (value,) = _I64.unpack_from(buf, off)
        return value, off + 8
    if tag == _TAG_DICT:
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        if count * 2 > len(buf) - off:
            raise ValueError("dict count exceeds payload")
        doc = {}
        for _ in range(count):
            key, off = _dec(buf, off)
            if not isinstance(key, str):
                raise ValueError("non-string dict key on the wire")
            doc[key], off = _dec(buf, off)
        return doc, off
    if tag == _TAG_LIST:
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        if count > len(buf) - off:
            raise ValueError("list count exceeds payload")
        items = []
        for _ in range(count):
            item, off = _dec(buf, off)
            items.append(item)
        return items, off
    if tag == _TAG_NIL:
        return None, off
    if tag == _TAG_TRUE:
        return True, off
    if tag == _TAG_FALSE:
        return False, off
    if tag == _TAG_BIGINT:
        (n,) = _U32.unpack_from(buf, off)
        off += 4
        end = off + n
        if end > len(buf):
            raise ValueError("truncated bigint")
        return int.from_bytes(buf[off:end], "big", signed=True), end
    raise ValueError(f"unknown tag 0x{tag:02x}")


def decode_value(buf: bytes) -> Any:
    """Inverse of :func:`encode_value`; raises ``ValueError`` on any
    malformed or trailing bytes."""
    try:
        value, off = _dec(buf, 0)
    except (IndexError, struct.error, UnicodeDecodeError) as exc:
        raise ValueError(f"malformed payload: {exc}") from exc
    if off != len(buf):
        raise ValueError(f"{len(buf) - off} trailing byte(s) after value")
    return value


class EncodeMemo:
    """Encoded-blob cache keyed by object *identity*.

    The serve tier's values are content-addressed and treated as
    immutable, and hot values are stable objects (the front end's hot
    memo, the cache peer-fill path), so ``id(value)`` is a sound key as
    long as the entry pins the object alive — a strong reference in the
    entry guarantees the id cannot be recycled, and the stored object
    is identity-checked on every hit anyway.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[int, tuple[Any, bytes]] = OrderedDict()

    def encode(self, value: Any) -> bytes:
        key = id(value)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is value:
            self._entries.move_to_end(key)
            return entry[1]
        blob = encode_value(value)
        self._entries[key] = (value, blob)
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return blob


class DecodeMemo:
    """Decoded-value cache keyed by blob bytes.

    The codec is canonical (sorted keys, single representation per
    value), so equal bytes decode to equal values; callers must treat
    returned objects as immutable — the same object is handed to every
    request carrying the same blob.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[bytes, Any] = OrderedDict()

    def decode(self, blob: bytes) -> Any:
        hit = self._entries.get(blob, _MISS)
        if hit is not _MISS:
            self._entries.move_to_end(blob)
            return hit
        value = decode_value(blob)
        self._entries[blob] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value


_MISS = object()


def encode_doc_frame(doc: dict[str, Any]) -> bytes:
    payload = encode_value(doc)
    if len(payload) > MAX_FRAME_LEN:
        raise ValueError(f"frame payload {len(payload)} B over the cap")
    return _HEADER.pack(MAGIC, FRAME_DOC, len(payload)) + payload


def _is_frame_id(rid: Any) -> bool:
    return type(rid) is int and 0 <= rid <= _U64_MAX


def decode_frame(
    ftype: int, payload: bytes, decode_memo: DecodeMemo
) -> dict[str, Any]:
    """One frame's payload back into its request/response document.

    Raises :class:`BadFrame` on any payload-level damage — the caller
    consumed exactly the framed length, so the stream stays usable.
    """
    try:
        if ftype == FRAME_DOC:
            doc = decode_value(payload)
            if not isinstance(doc, dict):
                raise ValueError("frame is not a document")
            return doc
        if ftype == FRAME_QREQ:
            rid, flags, kcode = _QREQ.unpack_from(payload)
            if kcode >= len(UNIT_KINDS):
                raise ValueError(f"unknown kind code {kcode}")
            params = decode_memo.decode(payload[_QREQ.size:])
            if not isinstance(params, dict):
                raise ValueError("QREQ params is not an object")
            req: dict[str, Any] = {
                "op": "query", "id": rid,
                "kind": UNIT_KINDS[kcode], "params": params,
            }
            if flags & _QREQ_FLAG_DIRECT:
                req["via"] = "direct"
            if flags & _QREQ_FLAG_REDIRECT:
                req["redirect"] = True
            return req
        if ftype == FRAME_QRESP:
            rid, latency_s, scode = _QRESP.unpack_from(payload)
            if scode >= len(SERVED_ORDER):
                raise ValueError(f"unknown served code {scode}")
            value = decode_memo.decode(payload[_QRESP.size:])
            return {
                "id": rid, "ok": True, "value": value,
                "served": SERVED_ORDER[scode], "latency_s": latency_s,
            }
        raise ValueError(f"unknown frame type 0x{ftype:02x}")
    except (ValueError, struct.error) as exc:
        raise BadFrame(str(exc)) from None


class WireConnection:
    """One connection's mode-aware codec state, wrapped around an
    asyncio stream pair.

    Starts in JSON-lines mode; :meth:`negotiate` (client side) or a
    sniffed magic byte / hello ack (server side, driven by the caller)
    flips it to binary.  ``allow_binary=False`` makes :meth:`recv`
    never sniff — for servers that speak JSON only, and for client
    links whose mode is set explicitly after negotiation.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        allow_binary: bool = True,
        encode_memo: EncodeMemo | None = None,
        decode_memo: DecodeMemo | None = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.allow_binary = allow_binary
        self.binary = False
        self.encode_memo = encode_memo if encode_memo is not None else EncodeMemo()
        self.decode_memo = decode_memo if decode_memo is not None else DecodeMemo()
        self._lock = asyncio.Lock()
        self._buf = bytearray()
        self._pos = 0  # consumed prefix of _buf (compacted lazily)
        self._sniffed = False
        self._first: bytes | None = None

    @property
    def wire(self) -> str:
        return WIRE_BINARY1 if self.binary else WIRE_JSON

    # -- receiving ---------------------------------------------------------
    async def recv(self) -> dict[str, Any] | None:
        """The next request/response document, or ``None`` on EOF.

        Raises :class:`BadFrame` for one undecodable frame (stream
        still framed — answer ``bad_request`` and keep reading) and
        :class:`WireError` when the stream can no longer be trusted.
        """
        if self.binary:
            return await self._recv_binary()
        if self.allow_binary and not self._sniffed:
            # Sniff exactly the connection's first byte: a blind-binary
            # client's opening magic, or the start of a JSON line.
            self._sniffed = True
            try:
                first = await self.reader.readexactly(1)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return None
            if first[0] == MAGIC:
                self.binary = True
                self._buf += first
                return await self._recv_binary()
            self._first = first
        while True:
            if self._first is not None:
                prefix, self._first = self._first, None
                line = prefix + (
                    await self.reader.readline() if prefix != b"\n" else b""
                )
            else:
                line = await self.reader.readline()
            if not line:
                return None
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                raise BadFrame("not a JSON object") from None
            if not isinstance(doc, dict):
                raise BadFrame("not a JSON object")
            return doc

    async def _recv_binary(self) -> dict[str, Any] | None:
        # The consumed prefix is tracked by offset and compacted only
        # when the buffer runs dry: deleting per frame would memmove
        # the whole remainder for every ~30-byte frame, going quadratic
        # exactly when a burst piles frames up.
        buf = self._buf
        while True:
            pos = self._pos
            if len(buf) - pos >= _HEADER.size:
                magic, ftype, length = _HEADER.unpack_from(buf, pos)
                if magic != MAGIC:
                    raise WireError(f"bad frame magic 0x{magic:02x}")
                if length > MAX_FRAME_LEN:
                    raise WireError(f"frame length {length} over the cap")
                end = pos + _HEADER.size + length
                if len(buf) >= end:
                    payload = bytes(buf[pos + _HEADER.size:end])
                    if end == len(buf):
                        del buf[:]  # cheap reset, no tail to move
                        self._pos = 0
                    else:
                        self._pos = end
                    return self._decode_frame(ftype, payload)
            if self._pos:
                del buf[:self._pos]
                self._pos = 0
            chunk = await self.reader.read(READ_CHUNK)
            if not chunk:
                return None  # EOF (mid-frame or between frames alike)
            buf += chunk

    def _decode_frame(self, ftype: int, payload: bytes) -> dict[str, Any]:
        return decode_frame(ftype, payload, self.decode_memo)

    # -- sending -----------------------------------------------------------
    def _request_bytes(self, doc: dict[str, Any]) -> bytes:
        """Encode one outbound request, fast-pathing eligible queries."""
        if not self.binary:
            return (json.dumps(doc, sort_keys=True) + "\n").encode()
        if (
            doc.get("op") == "query"
            and _is_frame_id(doc.get("id"))
            and doc.get("kind") in KIND_CODES
            and isinstance(doc.get("params"), dict)
            and doc.get("via") in (None, "direct")
            and doc.get("redirect") in (None, True, False)
            and _QREQ_FIELDS.issuperset(doc)
        ):
            flags = 0
            if doc.get("via") == "direct":
                flags |= _QREQ_FLAG_DIRECT
            if doc.get("redirect"):
                flags |= _QREQ_FLAG_REDIRECT
            blob = self.encode_memo.encode(doc["params"])
            return (
                _HEADER.pack(MAGIC, FRAME_QREQ, _QREQ.size + len(blob))
                + _QREQ.pack(doc["id"], flags, KIND_CODES[doc["kind"]])
                + blob
            )
        return encode_doc_frame(doc)

    def write_request(self, doc: dict[str, Any]) -> None:
        """Synchronous buffered write (no drain) — for senders that
        manage their own flow control, like the multiplexed links."""
        self.writer.write(self._request_bytes(doc))

    async def drain(self) -> None:
        await self.writer.drain()

    async def send(self, doc: dict[str, Any]) -> None:
        """One document, whole-frame atomic, flow-controlled."""
        if self.binary:
            data = encode_doc_frame(doc)
        else:
            data = (json.dumps(doc, sort_keys=True) + "\n").encode()
        async with self._lock:
            self.writer.write(data)
            await self.writer.drain()

    async def send_query_response(
        self, rid: Any, value: Any, served: str, latency_s: float
    ) -> None:
        """A query's success response; QRESP fast path when eligible."""
        scode = SERVED_CODES.get(served)
        if self.binary and scode is not None and _is_frame_id(rid):
            blob = self.encode_memo.encode(value)
            data = (
                _HEADER.pack(MAGIC, FRAME_QRESP, _QRESP.size + len(blob))
                + _QRESP.pack(rid, latency_s, scode)
                + blob
            )
            async with self._lock:
                self.writer.write(data)
                await self.writer.drain()
            return
        await self.send({
            "id": rid, "ok": True, "value": value,
            "served": served, "latency_s": latency_s,
        })

    async def send_response(self, doc: dict[str, Any]) -> None:
        """A response document of any shape; query successes take the
        fast path (the router's proxy re-framing uses this)."""
        if (
            self.binary
            and doc.get("ok") is True
            and len(doc) == 5
            and "value" in doc
            and "served" in doc
            and "latency_s" in doc
            and isinstance(doc.get("latency_s"), float)
        ):
            await self.send_query_response(
                doc.get("id"), doc["value"], doc["served"], doc["latency_s"]
            )
            return
        await self.send(doc)

    async def send_hello_ack(self, doc: dict[str, Any], enable: bool) -> None:
        """The hello ack must be the LAST JSON frame of the connection:
        flipping to binary under the write lock guarantees no response
        produced concurrently lands between the ack and the flip."""
        data = (json.dumps(doc, sort_keys=True) + "\n").encode()
        async with self._lock:
            self.writer.write(data)
            await self.writer.drain()
            if enable:
                self.binary = True

    # -- client-side negotiation -------------------------------------------
    async def negotiate(self) -> bool:
        """Offer ``binary1`` (one JSON hello, one JSON ack) and flip to
        binary if the peer agreed.  Returns whether binary is on; a
        refusal of any shape (``bad_request`` from a pre-hello server,
        ``"wire": "json"``) is the clean downgrade, not an error.  Must
        run before the connection carries any other traffic."""
        self.writer.write(
            (json.dumps({"op": "hello", "id": 0, "wire": WIRE_BINARY1})
             + "\n").encode()
        )
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("connection closed during wire negotiation")
        try:
            ack = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"malformed hello ack: {line!r}") from exc
        if (
            isinstance(ack, dict)
            and ack.get("ok")
            and ack.get("wire") == WIRE_BINARY1
        ):
            self.binary = True
        return self.binary


def hello_ack_doc(rid: Any, req: dict[str, Any], allow_binary: bool) -> tuple[dict[str, Any], bool]:
    """Server-side hello negotiation: ``(ack doc, enable binary)``.

    Offers we cannot speak (unknown versions, or binary disabled) are
    acked with ``"wire": "json"`` — negotiate down, never error: the
    client keeps working on the compatibility skin.
    """
    offered = req.get("wire")
    if allow_binary and offered == WIRE_BINARY1:
        return {"id": rid, "ok": True, "wire": WIRE_BINARY1}, True
    return {"id": rid, "ok": True, "wire": WIRE_JSON}, False


# -- synchronous one-shot client helpers ------------------------------------

class SyncWireClient:
    """Blocking-socket counterpart of :class:`WireConnection` for the
    one-shot client (:func:`repro.serve.client.request_once`): one
    buffered reader shared by the JSON and binary paths, so the hello
    ack and the binary frames that follow never fight over buffering.
    """

    def __init__(self, sock: Any) -> None:
        self.sock = sock
        self.binary = False
        self._buf = bytearray()

    def _fill(self) -> bool:
        chunk = self.sock.recv(READ_CHUNK)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def readline(self) -> bytes:
        while b"\n" not in self._buf:
            if not self._fill():
                break
        idx = self._buf.find(b"\n")
        if idx < 0:
            line, self._buf = bytes(self._buf), bytearray()
            return line
        line = bytes(self._buf[: idx + 1])
        del self._buf[: idx + 1]
        return line

    def negotiate(self) -> bool:
        self.sock.sendall(
            (json.dumps({"op": "hello", "id": 0, "wire": WIRE_BINARY1})
             + "\n").encode()
        )
        line = self.readline()
        if not line:
            raise ConnectionError("connection closed during wire negotiation")
        try:
            ack = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"malformed hello ack: {line!r}") from exc
        if (
            isinstance(ack, dict)
            and ack.get("ok")
            and ack.get("wire") == WIRE_BINARY1
        ):
            self.binary = True
        return self.binary

    def request(self, doc: dict[str, Any]) -> dict[str, Any]:
        if self.binary:
            self.sock.sendall(encode_doc_frame(doc))
            return self._read_frame()
        self.sock.sendall((json.dumps(doc) + "\n").encode())
        line = self.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        resp = json.loads(line)
        if not isinstance(resp, dict):
            raise ValueError(f"malformed response: {line!r}")
        return resp

    def _read_frame(self) -> dict[str, Any]:
        while True:
            if len(self._buf) >= _HEADER.size:
                magic, ftype, length = _HEADER.unpack_from(self._buf)
                if magic != MAGIC:
                    raise ConnectionError(f"bad frame magic 0x{magic:02x}")
                if length > MAX_FRAME_LEN:
                    raise ConnectionError(f"frame length {length} over the cap")
                end = _HEADER.size + length
                if len(self._buf) >= end:
                    payload = bytes(self._buf[_HEADER.size:end])
                    del self._buf[:end]
                    return decode_frame(ftype, payload, DecodeMemo(max_entries=8))
            if not self._fill():
                raise ConnectionError("server closed the connection mid-frame")
