"""Sharded cluster serving: consistent-hash router + cache peer-fill.

The cluster tier scales ``repro serve`` horizontally without giving up
the single-process tier's cache economics:

* :class:`HashRing` — consistent hashing of campaign keys
  (``kind`` + canonically-serialised ``params``) over the backend set,
  with virtual nodes for balance.  Every key has exactly one *home*
  shard, so the hot set partitions cleanly: each backend's cache and
  single-flight table see only their slice, and warm hit ratios match
  the single-process tier instead of dividing by N.

* :class:`ServeRouter` — a front door speaking the same protocol as
  :class:`~repro.serve.server.ServeServer`, JSON-lines by default with
  the same per-connection ``binary1`` negotiation
  (:mod:`repro.serve.wire`) on both its faces: clients may go binary
  towards the router, and the router's backend links may go binary
  towards the shards, independently.  ``query`` and
  ``probe`` ops forward to the key's home shard over one multiplexed
  connection per backend (:class:`BackendLink`); the backend's response
  is proxied verbatim (only the ``id`` is remapped, and the framing
  re-encoded for the client's negotiated wire), so the serving
  skin — values, ``served``, error shapes, ``retry_after_s`` — is
  byte-identical to talking to the backend directly.  ``stats``
  fans in per-backend snapshots plus an ``aggregate`` rollup;
  ``shutdown`` drains the whole cluster: the router stops admitting
  (``overloaded``/``reason="draining"``), awaits its in-flight
  forwards, then shuts each backend down in boot order.

* :class:`CachePeerFill` — the backend-side half.  A backend that
  misses its local cache (a query that arrived *not* via the router —
  direct clients, or a ring reshape) asks the key's home shard via the
  compute-free ``probe`` op before paying for the computation, and
  writes a hit through to its own cache.  Strictly an optimisation:
  any probe failure (peer down, timeout, malformed reply) degrades to
  a local MISS and the value is computed exactly as before.  Peers on
  cooldown after a failure are skipped entirely, so one dead shard
  cannot add per-request latency cluster-wide.

Nothing here touches values: both the router's forward path and the
peer-fill path move the backend's JSON through unchanged, which is what
the byte-identity acceptance tests pin down.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import socket
import time
from typing import Any

from repro.parallel.cache import MISS
from repro.serve.wire import (
    BadFrame,
    DecodeMemo,
    EncodeMemo,
    WireConnection,
    WireError,
    hello_ack_doc,
)

#: Virtual nodes per backend on the ring.  64 keeps the max/min key
#: share within ~20% for small clusters while hashing stays negligible.
DEFAULT_VNODES = 64

#: Peer probe budget: long enough for a loaded event loop to answer a
#: cache read, far shorter than computing the value locally would take
#: to matter.
DEFAULT_PROBE_TIMEOUT_S = 2.0

#: After a probe failure the peer is skipped for this long — a dead
#: shard must not put a connect-timeout on every request's path.
DEFAULT_DOWN_COOLDOWN_S = 1.0


def route_key(kind: str, params: dict[str, Any]) -> str:
    """The cluster routing key for one campaign query.

    Exactly the canonicalisation the front end's single-flight table
    uses (``json.dumps(..., sort_keys=True)``), so two requests that
    would coalesce in one process always route to the same shard.
    """
    return f"{kind}|{json.dumps(params, sort_keys=True)}"


def advertised_host(bind_host: str, override: str | None = None) -> str:
    """The peer-reachable address to put on the wire for ``bind_host``.

    A concrete bind address advertises itself.  A wildcard bind
    (``0.0.0.0``/``::``/empty) is *never* connectable — pre-fix, locate
    and redirect answers handed ring clients ``0.0.0.0:<port>`` — so it
    resolves to this machine's primary outbound address via a
    connected UDP socket (no packet is sent), falling back to loopback
    on machines with no route at all.  ``override`` (the
    ``--advertise-host`` flag) wins unconditionally: only the operator
    knows the right answer across NAT.
    """
    if override:
        return override
    if bind_host not in ("", "0.0.0.0", "::"):
        return bind_host
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.connect(("10.255.255.255", 1))
        addr = probe.getsockname()[0]
    except OSError:
        addr = "127.0.0.1"
    finally:
        probe.close()
    return addr if addr and not addr.startswith("0.") else "127.0.0.1"


def _ring_hash(material: str) -> int:
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def topology_epoch(backends: list[tuple[str, str, int]]) -> str:
    """A version tag for one cluster topology.

    Deterministic over the backend set (order-independent, like ring
    placement): every ``locate``/redirect answer carries it, so a
    client holding a stale ring can detect the mismatch and re-learn
    the topology instead of querying the wrong home shard forever.
    """
    material = ",".join(
        sorted(f"{name}={host}:{port}" for name, host, port in backends)
    )
    return hashlib.sha256(material.encode()).hexdigest()[:12]


class HashRing:
    """Consistent hashing with virtual nodes.

    :param nodes: backend names, in boot order.  Order does not affect
        placement (the ring is hash-ordered) but duplicates are
        rejected — two backends with one name would merge on the ring.
    :param vnodes: virtual nodes per backend.
    """

    def __init__(self, nodes: list[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {nodes}")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in nodes:
            for i in range(vnodes):
                points.append((_ring_hash(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def home(self, key: str) -> str:
        """The backend name owning ``key``."""
        h = _ring_hash(key)
        idx = bisect.bisect_right(self._hashes, h) % len(self._hashes)
        return self._owners[idx]

    def shares(self, sample_keys: list[str]) -> dict[str, int]:
        """How many of ``sample_keys`` each node owns (balance probe)."""
        shares = {node: 0 for node in self.nodes}
        for key in sample_keys:
            shares[self.home(key)] += 1
        return shares


class BackendLink:
    """One multiplexed connection to one backend.

    Requests from many router connections share this link; responses
    are matched back by an internal id (the caller's wire id never
    travels on the link, so concurrent clients reusing ids cannot
    collide).  A link failure fails every outstanding request with
    ``ConnectionError`` and the next request reconnects lazily.

    ``wire="binary"`` negotiates the ``binary1`` framing on connect
    (:meth:`~repro.serve.wire.WireConnection.negotiate`); a peer that
    declines leaves the link on JSON-lines — the downgrade is silent by
    design, so a mixed cluster keeps working.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        wire: str = "json",
        encode_memo: EncodeMemo | None = None,
        decode_memo: DecodeMemo | None = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.wire = wire
        self._encode_memo = encode_memo
        self._decode_memo = decode_memo
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._conn: WireConnection | None = None
        self._read_task: asyncio.Task | None = None
        self._lock = asyncio.Lock()
        self._next_id = 0
        self._waiting: dict[int, asyncio.Future] = {}

    @property
    def wire_active(self) -> str:
        """The framing this link actually negotiated (``"json"`` until
        connected, or after a downgrade)."""
        conn = self._conn
        return conn.wire if conn is not None else "json"

    async def _ensure_connected(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        conn = WireConnection(
            self._reader, self._writer,
            allow_binary=False,
            encode_memo=self._encode_memo,
            decode_memo=self._decode_memo,
        )
        if self.wire == "binary":
            # Negotiation runs before the read loop exists, so the ack
            # cannot race a concurrent request's response.
            await conn.negotiate()
        self._conn = conn
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop(conn)
        )

    async def _read_loop(self, conn: WireConnection) -> None:
        try:
            while True:
                try:
                    doc = await conn.recv()
                except (BadFrame, WireError) as exc:
                    raise ConnectionError(
                        f"backend {self.name}: undecodable frame"
                    ) from exc
                if doc is None:
                    raise ConnectionError(f"backend {self.name}: EOF")
                fut = self._waiting.pop(doc.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(doc)
        except (ConnectionError, OSError) as exc:
            self._fail_outstanding(exc)
        except asyncio.CancelledError:
            self._fail_outstanding(ConnectionError(
                f"backend {self.name}: link closed"
            ))
            raise

    def _fail_outstanding(self, exc: Exception) -> None:
        waiting, self._waiting = self._waiting, {}
        for fut in waiting.values():
            if not fut.done():
                fut.set_exception(exc)
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None
            self._conn = None

    async def request(
        self, doc: dict[str, Any], timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Send ``doc`` (its ``id`` is overwritten) and await the
        matching response.  Raises ``ConnectionError`` on link loss and
        ``asyncio.TimeoutError`` past ``timeout_s``.

        The lock covers connecting, id allocation and the buffered
        write only; ``drain()`` happens OUTSIDE it.  Pre-fix the drain
        ran under the lock, so one backpressured backend
        head-of-line-blocked every concurrent request on the link at
        send time — waiting on socket flow control is exactly the part
        that needs no mutual exclusion (the write buffer is appended
        atomically, and concurrent drains are supported waiters).
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        async with self._lock:
            await self._ensure_connected()
            self._next_id += 1
            link_id = self._next_id
            self._waiting[link_id] = fut
            conn = self._conn
            assert conn is not None
            wire_doc = dict(doc)
            wire_doc["id"] = link_id
            try:
                conn.write_request(wire_doc)
            except (ConnectionError, OSError) as exc:
                self._fail_outstanding(ConnectionError(str(exc)))
                raise ConnectionError(
                    f"backend {self.name}: send failed: {exc}"
                ) from exc
        try:
            await conn.drain()
        except (ConnectionError, OSError) as exc:
            self._fail_outstanding(ConnectionError(str(exc)))
            raise ConnectionError(
                f"backend {self.name}: send failed: {exc}"
            ) from exc
        try:
            if timeout_s is None:
                return await fut
            return await asyncio.wait_for(fut, timeout_s)
        finally:
            self._waiting.pop(link_id, None)

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._read_task
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, OSError
            ):
                await self._writer.wait_closed()
            self._writer = None
            self._reader = None
            self._conn = None
        self._fail_outstanding(ConnectionError(f"backend {self.name}: closed"))


class CachePeerFill:
    """The backend-side peer-fill hook (duck-typed for
    ``CampaignFrontEnd.peer_fill``).

    ``await probe(kind, params)`` returns the home shard's cached value
    or :data:`~repro.parallel.cache.MISS`.  MISS is also the answer
    whenever this backend *is* the home shard (its own cache already
    missed), the peer is on failure cooldown, or anything at all goes
    wrong — peer-fill must never make a request fail that local
    computation would have served.
    """

    def __init__(
        self,
        ring: HashRing,
        self_name: str,
        peers: dict[str, tuple[str, int]],
        probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
        down_cooldown_s: float = DEFAULT_DOWN_COOLDOWN_S,
        wire: str = "json",
    ) -> None:
        if self_name not in ring.nodes:
            raise ValueError(f"{self_name!r} is not on the ring: {ring.nodes}")
        self.ring = ring
        self.self_name = self_name
        self.probe_timeout_s = probe_timeout_s
        self.down_cooldown_s = down_cooldown_s
        self._links = {
            name: BackendLink(name, host, port, wire=wire)
            for name, (host, port) in peers.items()
            if name != self_name
        }
        self._down_until: dict[str, float] = {}
        # Monotonic timestamp of the last successful probe per peer: a
        # probe failure only (re-)stamps the cooldown when no probe has
        # succeeded since it STARTED — a slow failure racing a fresh
        # success must not re-declare a provably live peer dead.
        self._last_success: dict[str, float] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self.probes = 0  #: probes actually sent to a peer
        self.fills = 0   #: probes that came back as hits

    async def probe(self, kind: str, params: dict[str, Any]) -> Any:
        key = route_key(kind, params)
        home = self.ring.home(key)
        if home == self.self_name:
            return MISS  # we ARE the home shard; a local miss is final
        link = self._links.get(home)
        if link is None:
            return MISS
        if self._down_until.get(home, 0.0) > time.monotonic():
            return MISS  # peer on cooldown: don't queue behind a corpse
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Coalesce concurrent probes for one key, mirroring the
            # front end's single-flight table.
            try:
                return await asyncio.shield(inflight)
            except asyncio.CancelledError:
                raise  # THIS waiter was cancelled, not the leader
            except Exception:  # noqa: BLE001 - optimisation only
                return MISS
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = fut
        try:
            value = await self._probe_home(link, kind, params)
        except BaseException:
            # The leader died (typically cancelled mid-probe).  Its own
            # caller sees the failure, but every coalesced waiter must
            # degrade to MISS — peer-fill may never fail a request that
            # local compute would have served.
            if not fut.done():
                fut.set_result(MISS)
            raise
        else:
            if not fut.done():
                fut.set_result(value)
            return value
        finally:
            self._inflight.pop(key, None)

    async def _probe_home(
        self, link: BackendLink, kind: str, params: dict[str, Any]
    ) -> Any:
        self.probes += 1
        t_start = time.monotonic()
        try:
            doc = await link.request(
                {"op": "probe", "kind": kind, "params": params},
                timeout_s=self.probe_timeout_s,
            )
        except Exception:  # noqa: BLE001 - peer-fill is an optimisation
            if self._last_success.get(link.name, float("-inf")) <= t_start:
                self._down_until[link.name] = (
                    time.monotonic() + self.down_cooldown_s
                )
            return MISS
        # Any response at all proves the peer alive: clear the cooldown
        # (a stale entry otherwise outlives its expiry forever) and
        # record the success so racing failures cannot re-stamp it.
        self._last_success[link.name] = time.monotonic()
        self._down_until.pop(link.name, None)
        if doc.get("ok") and doc.get("hit") and "value" in doc:
            self.fills += 1
            return doc["value"]
        return MISS

    def snapshot(self) -> dict[str, int]:
        return {"probes": self.probes, "fills": self.fills}

    async def close(self) -> None:
        for link in self._links.values():
            await link.close()


class ServeRouter:
    """The cluster front door; see the module docstring.

    :param backends: ``(name, host, port)`` per backend, in boot order
        (drain shuts them down in this order).  Wildcard backend hosts
        are mapped through :func:`advertised_host` once, here, so every
        consumer of ``self.backends`` — locate answers, redirect docs,
        the topology epoch, the links themselves — sees a connectable
        address.
    :param binary_wire: accept ``binary1`` negotiation from clients.
    :param backend_wire: framing for the backend links (``"json"`` or
        ``"binary"``); backends that decline silently stay on JSON.
    """

    def __init__(
        self,
        backends: list[tuple[str, str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = DEFAULT_VNODES,
        forward_timeout_s: float | None = None,
        binary_wire: bool = True,
        backend_wire: str = "json",
        advertise_host: str | None = None,
    ) -> None:
        if not backends:
            raise ValueError("ServeRouter needs at least one backend")
        self.backends = [
            (name, advertised_host(bhost, advertise_host), bport)
            for name, bhost, bport in backends
        ]
        self.host = host
        self.port = port
        self.forward_timeout_s = forward_timeout_s
        self.binary_wire = binary_wire
        self.backend_wire = backend_wire
        self.epoch = topology_epoch(self.backends)
        self.ring = HashRing([name for name, _, _ in backends], vnodes)
        # Two memo pairs, shared across all connections on each side of
        # the proxy.  Client-side decoded params are stable objects
        # (same blob -> same dict), so the link-side EncodeMemo hits on
        # the forward; link-side decoded values are stable, so the
        # client-side EncodeMemo hits on the re-framed response.
        self._client_encode = EncodeMemo()
        self._client_decode = DecodeMemo()
        self._link_encode = EncodeMemo()
        self._link_decode = DecodeMemo()
        self._links = {
            name: BackendLink(
                name, bhost, bport, wire=backend_wire,
                encode_memo=self._link_encode,
                decode_memo=self._link_decode,
            )
            for name, bhost, bport in self.backends
        }
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.forwarded = 0       #: query/probe ops forwarded to a shard
        self.unavailable = 0     #: forwards that died on a link failure
        self.rejected_draining = 0
        self.located = 0         #: locate ops answered
        self.redirected = 0      #: queries answered with a redirect
        self.job_home_down = 0   #: job ops refused: job home unreachable

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op arrives, then drain the cluster:
        stop admitting (new queries get ``overloaded``/``draining``),
        await in-flight forwards, shut each backend down in boot order,
        close every link and straggler connection."""
        assert self._server is not None, "start() first"
        await self._shutdown.wait()
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        await self._idle.wait()
        for name, _, _ in self.backends:
            with contextlib.suppress(Exception):
                await self._links[name].request({"op": "shutdown"})
        for link in self._links.values():
            await link.close()
        for task in list(self._conn_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

    def _track(self, delta: int) -> None:
        self._inflight += delta
        if self._inflight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        conn = WireConnection(
            reader, writer,
            allow_binary=self.binary_wire,
            encode_memo=self._client_encode,
            decode_memo=self._client_decode,
        )
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    req = await conn.recv()
                except BadFrame as exc:
                    # The frame header was sound, so the stream is
                    # still in sync: answer and keep reading.
                    await self._send(
                        conn,
                        {"id": None, "ok": False, "error": "bad_request",
                         "detail": str(exc)},
                    )
                    continue
                except WireError:
                    break  # framing lost; only the connection can die
                if req is None:
                    break
                op = req.get("op")
                rid = req.get("id")
                if op in ("query", "probe"):
                    # Per-request task, as in ServeServer: one slow
                    # shard must not serialise a connection's traffic.
                    sub = asyncio.get_running_loop().create_task(
                        self._answer_forward(conn, rid, req)
                    )
                    pending.add(sub)
                    sub.add_done_callback(pending.discard)
                elif op == "stats":
                    await self._send(conn, await self._answer_stats(rid))
                elif op == "locate":
                    await self._send(conn, self._answer_locate(rid, req))
                elif op in ("submit", "status", "result", "cancel"):
                    # Job ops are not sharded by key: they live on the
                    # first backend, the cluster's designated job home.
                    await self._send(conn, await self._forward_job(rid, req))
                elif op == "hello" and self.binary_wire:
                    ack, enable = hello_ack_doc(rid, req, self.binary_wire)
                    try:
                        await conn.send_hello_ack(
                            ack, enable and not conn.binary
                        )
                    except (ConnectionResetError, BrokenPipeError):
                        break
                elif op == "ping":
                    await self._send(conn, {"id": rid, "ok": True})
                elif op == "shutdown":
                    await self._send(conn, {"id": rid, "ok": True})
                    self.request_shutdown()
                else:
                    # With binary_wire off, "hello" lands here: the
                    # bad_request IS the client's downgrade signal.
                    await self._send(
                        conn,
                        {"id": rid, "ok": False, "error": "bad_request",
                         "detail": f"unknown op {op!r}"},
                    )
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            for sub in pending:
                sub.cancel()
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, OSError
            ):
                await writer.wait_closed()

    async def _answer_forward(
        self,
        conn: WireConnection,
        rid: Any,
        req: dict[str, Any],
    ) -> None:
        kind = req.get("kind")
        params = req.get("params")
        if not isinstance(kind, str) or not isinstance(params, dict):
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "bad_request",
                 "detail": f"{req.get('op')} needs a string 'kind' "
                 "and object 'params'"},
            )
            return
        if self._draining:
            self.rejected_draining += 1
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "overloaded",
                 "reason": "draining", "retry_after_s": 1.0},
            )
            return
        home = self.ring.home(route_key(kind, params))
        if req.get("op") == "query" and req.get("redirect"):
            # Opt-in client redirect: answer with the home shard's
            # address instead of proxying — the client connects direct
            # and the router's single process leaves the data path.
            self.redirected += 1
            await self._send(conn, self._redirect_doc(rid, home))
            return
        doc = await self._forward(home, rid, req)
        # send_response re-frames a successful query response on the
        # QRESP fast path when the client negotiated binary; the doc
        # itself is the backend's verbatim (id-remapped) answer either
        # way.
        try:
            await conn.send_response(doc)
        except (ConnectionResetError, BrokenPipeError):
            pass

    def _redirect_doc(self, rid: Any, home: str) -> dict[str, Any]:
        host, port = next(
            (h, p) for name, h, p in self.backends if name == home
        )
        return {"id": rid, "ok": False, "error": "redirect",
                "backend": home, "host": host, "port": port,
                "epoch": self.epoch}

    def _answer_locate(self, rid: Any, req: dict[str, Any]) -> dict[str, Any]:
        """The redirect protocol's discovery op: the full topology (and
        epoch), plus — when the request names a key — that key's home
        shard.  Answered from the ring alone, no backend round-trip."""
        kind = req.get("kind")
        params = req.get("params")
        doc: dict[str, Any] = {
            "id": rid, "ok": True, "epoch": self.epoch,
            "backends": {
                name: [host, port] for name, host, port in self.backends
            },
        }
        if kind is not None or params is not None:
            if not isinstance(kind, str) or not isinstance(params, dict):
                return {"id": rid, "ok": False, "error": "bad_request",
                        "detail": "locate needs a string 'kind' and "
                        "object 'params' (or neither)"}
            home = self.ring.home(route_key(kind, params))
            host, port = next(
                (h, p) for name, h, p in self.backends if name == home
            )
            doc.update(backend=home, host=host, port=port)
        self.located += 1
        return doc

    async def _forward_job(self, rid: Any, req: dict[str, Any]) -> dict[str, Any]:
        """Job ops live on the boot-order-first backend (the cluster's
        job home).  When that backend is down, answer with a structured
        ``job_home_down`` — naming the home and a retry hint — instead
        of the generic ``unavailable``: there is no failover to
        attempt, and the caller deserves to know the jobs themselves
        are intact, just briefly unreachable."""
        home = self.backends[0][0]
        doc = await self._forward(home, rid, req)
        if doc.get("ok") is False and doc.get("error") == "unavailable":
            self.job_home_down += 1
            return {"id": rid, "ok": False, "error": "job_home_down",
                    "job_home": home,
                    "retry_after_s": DEFAULT_DOWN_COOLDOWN_S,
                    "detail": doc.get("detail", "")}
        return doc

    async def _forward(
        self, backend: str, rid: Any, req: dict[str, Any]
    ) -> dict[str, Any]:
        """Proxy ``req`` to ``backend`` and return its response doc
        VERBATIM except for the id (remapped back to the caller's) —
        values, ``served``, error shapes and ``retry_after_s`` all pass
        through untouched; that is the byte-identity contract."""
        self._track(+1)
        try:
            doc = await self._links[backend].request(
                req, timeout_s=self.forward_timeout_s
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            self.unavailable += 1
            return {"id": rid, "ok": False, "error": "unavailable",
                    "backend": backend,
                    "detail": f"{type(exc).__name__}: {exc}"}
        finally:
            self._track(-1)
        self.forwarded += 1
        out = dict(doc)
        out["id"] = rid
        return out

    async def _answer_stats(self, rid: Any) -> dict[str, Any]:
        """Own counters + per-backend snapshots + an aggregate rollup."""
        per_backend: dict[str, Any] = {}
        agg = {
            "accepted": 0, "rejected": 0, "cache_hits": 0,
            "coalesced": 0, "peer_fills": 0, "peer_serves": 0,
            "computed": 0, "failed": 0, "direct": 0,
        }
        hit_ratios: dict[str, float] = {}
        for name, _, _ in self.backends:
            try:
                doc = await self._links[name].request(
                    {"op": "stats"}, timeout_s=self.forward_timeout_s
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                per_backend[name] = {
                    "ok": False,
                    "detail": f"{type(exc).__name__}: {exc}",
                }
                continue
            stats = doc.get("stats", {})
            per_backend[name] = stats
            hit_ratios[name] = stats.get("hit_ratio", 0.0)
            for field in agg:
                agg[field] += stats.get(field, 0)
        agg["hit_ratio"] = (
            (agg["cache_hits"] + agg["coalesced"] + agg["peer_fills"])
            / agg["accepted"]
            if agg["accepted"] else 0.0
        )
        agg["per_backend_hit_ratio"] = hit_ratios
        return {
            "id": rid, "ok": True,
            "router": {
                "backends": [name for name, _, _ in self.backends],
                "topology_epoch": self.epoch,
                "forwarded": self.forwarded,
                "unavailable": self.unavailable,
                "rejected_draining": self.rejected_draining,
                "located": self.located,
                "redirected": self.redirected,
                "job_home_down": self.job_home_down,
                "draining": self._draining,
            },
            "stats": agg,
            "backends": per_backend,
        }

    @staticmethod
    async def _send(conn: WireConnection, doc: dict[str, Any]) -> None:
        try:
            await conn.send(doc)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away
