"""JSON-lines TCP transport in front of :class:`CampaignFrontEnd`.

Protocol (one JSON object per line, both directions)::

    -> {"op": "query", "id": 1, "kind": "sweep_point",
        "params": {"mode": "single", "platform": "Tegra2", "freq": 1.0}}
    <- {"id": 1, "ok": true, "value": {...}, "served": "cache",
        "latency_s": 0.0003}

    -> {"op": "stats", "id": 2}
    <- {"id": 2, "ok": true, "stats": {...ServeStats.snapshot()...}}

    -> {"op": "ping", "id": 3}
    <- {"id": 3, "ok": true}

    -> {"op": "probe", "id": 9, "kind": "sweep_point", "params": {...}}
    <- {"id": 9, "ok": true, "hit": true, "value": {...}}   # or hit: false

``probe`` is the cluster peer-fill read (see :mod:`repro.serve.router`):
a local-cache-only lookup that never computes, so a shard can ask a
key's home shard for an already-computed value without risking
recursive work amplification.

    -> {"op": "shutdown", "id": 4}
    <- {"id": 4, "ok": true}          # then: graceful drain, server exit

Job-tier ops (when the server is wired to a
:class:`~repro.serve.jobs.JobManager`; see :mod:`repro.serve.jobs`)::

    -> {"op": "submit", "id": 5, "tenant": "alice",
        "units": [{"kind": "sweep_point", "params": {...}}, ...]}
    -> {"op": "submit", "id": 5, "tenant": "alice", "campaign": "quick"}
    <- {"id": 5, "ok": true, "job_id": "4f2a...", "state": "queued",
        "n_units": 17}

    -> {"op": "status", "id": 6, "job_id": "4f2a..."}   # job_id optional
    <- {"id": 6, "ok": true, "job": {...}}              # or "jobs": [...]

    -> {"op": "result", "id": 7, "job_id": "4f2a..."}
    <- {"id": 7, "ok": true, "result": {"units": [...], ...}}

    -> {"op": "cancel", "id": 8, "job_id": "4f2a..."}
    <- {"id": 8, "ok": true, "cancelled": true}

Wire negotiation: the connection starts as JSON-lines.  A client may
send ``{"op": "hello", "wire": "binary1"}`` (or open with the magic
byte ``0xAB``) to switch both directions to the length-prefixed binary
framing of :mod:`repro.serve.wire`; the documents above are identical
in either framing, only the bytes differ.  Servers started with the
binary wire disabled answer ``hello`` as an unknown op (``bad_request``)
— exactly like servers that predate it — which is the client's clean
downgrade signal.

Error responses carry ``ok: false`` plus ``error`` — ``"overloaded"``
(admission control or a tenant over its job quota; includes
``retry_after_s`` and ``reason``, the 429-style refusal),
``"bad_request"`` (malformed JSON / unknown op, kind or job),
``"not_ready"`` (``result`` on a non-terminal job; includes the job's
``state``), or ``"internal"`` (execution failure).  Queries on one
connection run concurrently — responses are matched by ``id``, not by
order — which is what lets a single connection exercise single-flight
coalescing.  Job ops are answered inline: they touch only in-memory
state plus a journal append, never the worker pool.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.parallel.cache import MISS
from repro.serve.frontend import CampaignFrontEnd, Overloaded
from repro.serve.jobs import JobManager, JobNotReady, campaign_job_units
from repro.serve.wire import (
    BadFrame,
    EncodeMemo,
    WireConnection,
    WireError,
    hello_ack_doc,
)


class ServeServer:
    """One listening socket wired to one front end.

    ``port=0`` binds an ephemeral port; the actual port is on
    ``self.port`` after :meth:`start` (and printed by the CLI so
    clients and CI can find it).

    ``binary_wire`` gates the ``binary1`` framing (see
    :mod:`repro.serve.wire`): when True (the default), a client may
    negotiate binary via the ``hello`` op or open with the magic byte;
    when False the server is JSON-lines only — ``hello`` is an unknown
    op (exactly like a server that predates it) and a magic-byte
    opener gets the connection closed.

    ``advertise_host`` is the address handed out by ``locate`` answers.
    It defaults to the bind host unless that is a wildcard
    (``0.0.0.0``/``::``) — a wildcard is never connectable, so it is
    resolved to this machine's primary address instead of telling ring
    clients to dial ``0.0.0.0:<port>``.
    """

    def __init__(
        self,
        frontend: CampaignFrontEnd,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs_manager: JobManager | None = None,
        drain_timeout_s: float | None = None,
        name: str = "serve",
        binary_wire: bool = True,
        advertise_host: str | None = None,
    ) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self.name = name
        self.jobs = jobs_manager
        self.drain_timeout_s = drain_timeout_s
        self.binary_wire = binary_wire
        self.advertise_host = advertise_host
        self.recovered: dict[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        # Response-value blobs are memoised per server, not per
        # connection: the hot set is shared, so every connection reuses
        # the same encodings.
        self._encode_memo = EncodeMemo()

    async def start(self) -> None:
        if self.advertise_host is None:
            from repro.serve.router import advertised_host

            self.advertise_host = advertised_host(self.host)
        await self.frontend.start()
        if self.jobs is not None:
            # Replay the journal and resume from the cache BEFORE the
            # socket opens: clients must never observe pre-recovery
            # state, and recovered jobs re-enter dispatch immediately.
            self.recovered = self.jobs.recover()
            await self.jobs.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op arrives, then drain gracefully:
        stop accepting connections, park incomplete jobs in the journal
        (they are durable — a restart resumes them), resolve every
        accepted query, answer any stragglers on open connections,
        close.  ``drain_timeout_s`` bounds each drain stage instead of
        letting a slow batch hold shutdown hostage."""
        assert self._server is not None, "start() first"
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        if self.jobs is not None:
            await self.jobs.drain(self.drain_timeout_s)
        await self.frontend.drain(self.drain_timeout_s)
        if self.jobs is not None:
            self.jobs.close()
        peer_fill = getattr(self.frontend, "peer_fill", None)
        if peer_fill is not None:
            await peer_fill.close()
        for task in list(self._conn_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        conn = WireConnection(
            reader, writer,
            allow_binary=self.binary_wire,
            encode_memo=self._encode_memo,
        )
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    req = await conn.recv()
                except BadFrame as exc:
                    # One bad frame, a still-framed stream: answer and
                    # keep reading — a wedged read loop would be worse
                    # than the malformed request.
                    await self._send(
                        conn,
                        {"id": None, "ok": False, "error": "bad_request",
                         "detail": str(exc)},
                    )
                    continue
                except WireError:
                    break  # framing broken beyond resync: drop the link
                if req is None:
                    break
                op = req.get("op")
                rid = req.get("id")
                if op == "query":
                    # Per-request task: queries on one connection run
                    # concurrently, so duplicates actually coalesce.
                    sub = asyncio.get_running_loop().create_task(
                        self._answer_query(conn, rid, req)
                    )
                    pending.add(sub)
                    sub.add_done_callback(pending.discard)
                elif op == "stats":
                    doc = {
                        "id": rid, "ok": True,
                        "stats": self.frontend.stats.snapshot(),
                        "queue_depth": self.frontend.queue_depth,
                        "draining": self.frontend.draining,
                    }
                    if self.jobs is not None:
                        doc["jobs"] = dict(self.jobs.totals)
                    await self._send(conn, doc)
                elif op == "probe":
                    await self._send(conn, self._answer_probe(rid, req))
                elif op == "locate":
                    await self._send(conn, self._answer_locate(rid, req))
                elif op in ("submit", "status", "result", "cancel"):
                    await self._send(conn, self._answer_job(op, rid, req))
                elif op == "ping":
                    await self._send(conn, {"id": rid, "ok": True})
                elif op == "hello" and self.binary_wire:
                    ack, enable = hello_ack_doc(rid, req, self.binary_wire)
                    try:
                        await conn.send_hello_ack(
                            ack, enable and not conn.binary
                        )
                    except (ConnectionResetError, BrokenPipeError):
                        break
                elif op == "shutdown":
                    await self._send(conn, {"id": rid, "ok": True})
                    self.request_shutdown()
                else:
                    # A JSON-only server treats "hello" like any other
                    # unknown op — that bad_request IS the downgrade
                    # signal binary-preferring clients key off.
                    await self._send(
                        conn,
                        {"id": rid, "ok": False, "error": "bad_request",
                         "detail": f"unknown op {op!r}"},
                    )
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels straggler connections after the drain.
            # Every accepted request is resolved by then, but its answer
            # task may not have written yet — flush those before closing
            # so "drained" means none dropped at the transport either.
            # (Finishing normally also keeps asyncio's streams helper
            # from logging the cancellation as a connection error.)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            for sub in pending:
                sub.cancel()
            self._conn_tasks.discard(task)
            writer.close()
            # CancelledError here is the close-waiter future dying when
            # a peer link drops mid-teardown, not task cancellation —
            # and this handler finishes normally on cancellation anyway
            # (see the except clause above).
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError,
            ):
                await writer.wait_closed()

    def _answer_job(self, op: str, rid: Any, req: dict[str, Any]) -> dict[str, Any]:
        """Handle a job-tier op synchronously; returns the response doc.

        Job ops never touch the worker pool — they are in-memory state
        plus (for ``submit``/``cancel``) a flushed journal append — so
        answering them inline keeps them responsive even while a batch
        is executing.
        """
        if self.jobs is None:
            return {"id": rid, "ok": False, "error": "bad_request",
                    "detail": "job tier disabled (serve --no-jobs)"}
        try:
            if op == "submit":
                tenant = req.get("tenant", "default")
                campaign = req.get("campaign")
                if campaign is not None:
                    if campaign not in ("quick", "full"):
                        raise ValueError(
                            "campaign must be 'quick' or 'full'"
                        )
                    units = campaign_job_units(quick=campaign == "quick")
                elif isinstance(req.get("units"), list):
                    units = req["units"]
                else:
                    raise ValueError(
                        "submit needs a 'units' array or a 'campaign' name"
                    )
                job = self.jobs.submit(
                    tenant, units, seed=req.get("seed"),
                    job_id=req.get("job_id"),
                )
                return {"id": rid, "ok": True, "job_id": job.job_id,
                        "state": job.state, "n_units": len(job.units)}
            if op == "status":
                job_id = req.get("job_id")
                if job_id is None:
                    return {"id": rid, "ok": True,
                            "jobs": self.jobs.status()}
                return {"id": rid, "ok": True,
                        "job": self.jobs.status(job_id)}
            if op == "result":
                return {"id": rid, "ok": True,
                        "result": self.jobs.result(req.get("job_id"))}
            # op == "cancel"
            return {"id": rid, "ok": True,
                    "cancelled": self.jobs.cancel(req.get("job_id"))}
        except Overloaded as exc:
            return {"id": rid, "ok": False, "error": "overloaded",
                    "reason": exc.reason,
                    "retry_after_s": exc.retry_after_s}
        except JobNotReady as exc:
            return {"id": rid, "ok": False, "error": "not_ready",
                    "state": exc.state}
        except KeyError as exc:
            return {"id": rid, "ok": False, "error": "bad_request",
                    "detail": str(exc).strip("'\"")}
        except (ValueError, TypeError) as exc:
            return {"id": rid, "ok": False, "error": "bad_request",
                    "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - transport containment
            return {"id": rid, "ok": False, "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}"}

    def _answer_locate(self, rid: Any, req: dict[str, Any]) -> dict[str, Any]:
        """The redirect protocol's discovery op, answered by a bare
        backend as a one-node topology: this server is every key's home
        shard.  Same shape as the router's answer, so a ring-aware
        client pointed at a single server degenerates cleanly to a
        plain client (and the wire contract stays endpoint-uniform).

        The advertised address goes on the wire, never the bind host:
        pre-fix, ``--host 0.0.0.0`` handed ring clients the
        unconnectable ``0.0.0.0:<port>``."""
        from repro.serve.router import topology_epoch

        host = self.advertise_host if self.advertise_host else self.host
        kind = req.get("kind")
        params = req.get("params")
        doc: dict[str, Any] = {
            "id": rid, "ok": True,
            "epoch": topology_epoch([(self.name, host, self.port)]),
            "backends": {self.name: [host, self.port]},
        }
        if kind is not None or params is not None:
            if not isinstance(kind, str) or not isinstance(params, dict):
                return {"id": rid, "ok": False, "error": "bad_request",
                        "detail": "locate needs a string 'kind' and "
                        "object 'params' (or neither)"}
            doc.update(backend=self.name, host=host, port=self.port)
        return doc

    def _answer_probe(self, rid: Any, req: dict[str, Any]) -> dict[str, Any]:
        """Cluster peer-fill read: the LOCAL cache's answer for a key,
        or a clean miss.  Never computes and never probes further —
        this is the home-shard end of the peer-fill protocol, so any
        recursion here would ripple across the whole ring.
        """
        kind = req.get("kind")
        params = req.get("params")
        if not isinstance(kind, str) or not isinstance(params, dict):
            return {"id": rid, "ok": False, "error": "bad_request",
                    "detail": "probe needs a string 'kind' and object 'params'"}
        try:
            value = self.frontend.cache_peek(kind, params)
        except ValueError as exc:
            return {"id": rid, "ok": False, "error": "bad_request",
                    "detail": str(exc)}
        if value is MISS:
            return {"id": rid, "ok": True, "hit": False}
        return {"id": rid, "ok": True, "hit": True, "value": value}

    async def _answer_query(
        self,
        conn: WireConnection,
        rid: Any,
        req: dict[str, Any],
    ) -> None:
        kind = req.get("kind")
        params = req.get("params")
        # Ring-aware clients tag queries they routed themselves so the
        # stats distinguish router-proxied from direct traffic (the
        # response shape stays identical on both paths).  Counted only
        # for queries the funnel actually admits — pre-fix the counter
        # ticked before validation, so malformed via:"direct" frames
        # permanently skewed the direct-vs-proxied accounting.
        direct = req.get("via") == "direct"
        if not isinstance(kind, str) or not isinstance(params, dict):
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "bad_request",
                 "detail": "query needs a string 'kind' and object 'params'"},
            )
            return
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            value, served = await self.frontend.submit(kind, params)
        except Overloaded as exc:
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "overloaded",
                 "reason": exc.reason,
                 "retry_after_s": exc.retry_after_s},
            )
            return
        except ValueError as exc:
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "bad_request",
                 "detail": str(exc)},
            )
            return
        except Exception as exc:
            if direct:
                self.frontend.stats.direct += 1  # admitted, then failed
            await self._send(
                conn,
                {"id": rid, "ok": False, "error": "internal",
                 "detail": f"{type(exc).__name__}: {exc}"},
            )
            return
        if direct:
            self.frontend.stats.direct += 1
        try:
            await conn.send_query_response(
                rid, value, served, loop.time() - t0
            )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the front end still counted the work

    @staticmethod
    async def _send(conn: WireConnection, doc: dict[str, Any]) -> None:
        try:
            await conn.send(doc)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the front end still counted the work
