"""``repro jobs`` — client CLI for the durable campaign job tier.

Talks the same JSON-lines TCP protocol as every other serve client;
one request per connection (job ops are cheap and stateless per
connection, so holding a socket buys nothing).

Usage::

    python -m repro jobs submit --port 7653 --campaign quick
    python -m repro jobs submit --port 7653 --tenant alice \\
        --units '[{"kind": "headline", "params": {}}]'
    python -m repro jobs status --port 7653            # all jobs
    python -m repro jobs status --port 7653 JOB_ID
    python -m repro jobs watch  --port 7653 JOB_ID     # poll to terminal
    python -m repro jobs result --port 7653 JOB_ID
    python -m repro jobs cancel --port 7653 JOB_ID

``watch`` exits 0 when the job lands ``done``, 1 on ``failed`` /
``cancelled``, 2 on ``--timeout`` — so CI can gate on a submitted
campaign completing after a crash/restart cycle.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.serve.client import request_once as _request


def _fail(resp: dict[str, Any]) -> int:
    error = resp.get("error", "unknown")
    detail = resp.get("detail") or resp.get("reason") or ""
    hint = ""
    if "job_home" in resp:
        hint += f" (job home: {resp['job_home']})"
    if "retry_after_s" in resp:
        hint += f" (retry after {resp['retry_after_s']:.2f} s)"
    print(f"repro jobs: {error}{': ' if detail else ''}{detail}{hint}",
          file=sys.stderr)
    return 1


def _print_status(job: dict[str, Any]) -> None:
    line = (
        f"{job['job_id']}  {job['state']:<9}  tenant={job['tenant']}  "
        f"{job['done']}/{job['n_units']} done"
    )
    if job.get("quarantined"):
        line += f", {job['quarantined']} quarantined"
    if job.get("resumed_units"):
        line += f", {job['resumed_units']} resumed"
    print(line)


def jobs_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="Submit and track durable campaign jobs on a "
        "running 'repro serve' instance.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="server address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, required=True,
        help="server port (from the serve 'listening on' line)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit a job")
    p_submit.add_argument(
        "--tenant", default="default",
        help="tenant the job is accounted to (default: 'default')",
    )
    p_submit.add_argument(
        "--seed", type=int, default=None,
        help="study seed for the job's units (default: server's)",
    )
    group = p_submit.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--campaign", choices=("quick", "full"),
        help="submit the whole figure campaign as one job",
    )
    group.add_argument(
        "--units", metavar="JSON",
        help="explicit unit array: "
        "'[{\"kind\": ..., \"params\": {...}}, ...]'",
    )
    group.add_argument(
        "--units-file", type=Path, metavar="PATH",
        help="read the unit array from a JSON file",
    )

    p_status = sub.add_parser("status", help="show job state(s)")
    p_status.add_argument("job_id", nargs="?", default=None)
    p_status.add_argument(
        "--json", action="store_true", help="print raw JSON"
    )

    p_watch = sub.add_parser(
        "watch", help="poll a job until it reaches a terminal state"
    )
    p_watch.add_argument("job_id")
    p_watch.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="poll interval in seconds (default: 0.5)",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up (exit 2) after S seconds (default: forever)",
    )

    p_result = sub.add_parser("result", help="fetch a terminal job's values")
    p_result.add_argument("job_id")

    p_cancel = sub.add_parser("cancel", help="cancel a queued/running job")
    p_cancel.add_argument("job_id")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except (OSError, ConnectionError, json.JSONDecodeError, ValueError) as exc:
        print(f"repro jobs: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    host, port = args.host, args.port
    if args.command == "submit":
        doc: dict[str, Any] = {"op": "submit", "tenant": args.tenant}
        if args.seed is not None:
            doc["seed"] = args.seed
        if args.campaign:
            doc["campaign"] = args.campaign
        else:
            text = (
                args.units_file.read_text()
                if args.units_file is not None else args.units
            )
            doc["units"] = json.loads(text)
        resp = _request(host, port, doc)
        if not resp.get("ok"):
            return _fail(resp)
        print(
            f"{resp['job_id']}  queued  "
            f"{resp['n_units']} unit(s) as tenant {args.tenant}"
        )
        return 0

    if args.command == "status":
        doc = {"op": "status"}
        if args.job_id:
            doc["job_id"] = args.job_id
        resp = _request(host, port, doc)
        if not resp.get("ok"):
            return _fail(resp)
        if args.json:
            print(json.dumps(
                resp.get("job", resp.get("jobs")), indent=2, sort_keys=True
            ))
        elif args.job_id:
            _print_status(resp["job"])
        else:
            jobs = resp["jobs"]
            if not jobs:
                print("no jobs")
            for job in jobs:
                _print_status(job)
        return 0

    if args.command == "watch":
        deadline = (
            time.monotonic() + args.timeout
            if args.timeout is not None else None
        )
        last = None
        while True:
            resp = _request(host, port, {"op": "status", "job_id": args.job_id})
            if not resp.get("ok"):
                return _fail(resp)
            job = resp["job"]
            key = (job["state"], job["done"], job["quarantined"])
            if key != last:
                _print_status(job)
                last = key
            if job["state"] in ("done", "failed", "cancelled"):
                return 0 if job["state"] == "done" else 1
            if deadline is not None and time.monotonic() >= deadline:
                print(
                    f"repro jobs: watch timed out after {args.timeout} s",
                    file=sys.stderr,
                )
                return 2
            time.sleep(args.interval)

    if args.command == "result":
        resp = _request(host, port, {"op": "result", "job_id": args.job_id})
        if not resp.get("ok"):
            return _fail(resp)
        print(json.dumps(resp["result"], indent=2, sort_keys=True))
        return 0

    # cancel
    resp = _request(host, port, {"op": "cancel", "job_id": args.job_id})
    if not resp.get("ok"):
        return _fail(resp)
    print("cancelled" if resp["cancelled"] else "already terminal")
    return 0
