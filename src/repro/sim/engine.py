"""A minimal deterministic discrete-event engine.

Design:

* :class:`Event` — a one-shot occurrence that fires at a scheduled time
  (or when explicitly succeeded) and carries an optional value.
* :class:`Process` — wraps a generator.  The generator yields events;
  the process sleeps until the yielded event fires, then is resumed with
  the event's value.  A process is itself awaitable (its completion is
  an event), enabling fork/join structures.
* :class:`Engine` — the event heap and clock.  Ties are broken by a
  monotonically increasing sequence number, so runs are deterministic.

The engine is single-threaded and allocation-light.  Heap entries are
plain slotted tuples ``(time, seq, kind, obj, arg)`` where ``kind`` is a
small integer dispatched by the run loop — no per-schedule closure is
ever allocated on the hot path (``timeout``/``_ready``/
``_schedule_throw``).  Arbitrary callables still go through
:meth:`Engine._push` as ``_KIND_CALL`` entries.  Because every schedule
point consumes exactly one sequence number, exactly as the closure-based
scheduler did, the execution order — and therefore every canonical
trace — is byte-identical to the previous implementation (pinned by the
golden traces under ``tests/data/``).

A 192-rank MPI program with tens of thousands of messages simulates in
well under a second, which is what the Figure 6 scalability sweeps need;
``python -m repro bench`` tracks the scheduler's throughput over time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.obs.recorder import current as _obs_current

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Heap-entry kinds, dispatched without closure allocation.  Ordered by
#: observed frequency in the MPI workloads (timeouts dominate: every
#: compute span, CPU occupancy and wire transfer is one).
_KIND_TIMEOUT = 0  # obj = Event, arg = value  -> obj.succeed(arg)
_KIND_STEP = 1     # obj = Process, arg = value -> obj._step(arg)
_KIND_THROW = 2    # obj = Process, arg = exc  -> obj._step(None, arg)
_KIND_CALL = 3     # obj = callable, arg unused -> obj()


class Interrupt(Exception):
    """Raised inside a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimFailure(Exception):
    """Base class for *modelled* failures (a crashed peer, a receive
    timeout, an injected fault).

    A process that dies of a ``SimFailure`` is contained: the process is
    marked failed and its completion event fails, but the engine keeps
    running — the failure propagates along wait edges instead of tearing
    down the whole simulation.  Any other exception escaping a process
    is a programming error and still aborts the run loudly.
    """


class Event:
    """A one-shot event; processes wait on it by yielding it.

    An event either *succeeds* (fires with a value) or *fails* (fires
    with an exception that is thrown into every waiter).  ``triggered``
    covers both; ``failed`` is the exception or ``None``.
    """

    __slots__ = (
        "engine", "triggered", "cancelled", "value", "failed",
        "_waiters", "callbacks",
    )

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.cancelled = False
        self.value: Any = None
        self.failed: BaseException | None = None
        # Lazily allocated: most events (every timeout) gain at most one
        # waiter and zero callbacks, so the empty list would be pure
        # allocation overhead on the hot path.  ``callbacks`` stays a
        # real list — it is part of the public surface (join code and
        # the MPI layer append to it directly).
        self._waiters: list[Process] | None = None
        self.callbacks: list[Callable[[Event], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event immediately (at the current simulation time).

        Callback and waiter lists are dropped once run, so a fired event
        holds no references into joins or processes that outlive it.
        """
        if self.triggered:
            raise RuntimeError("event already triggered")
        if self.cancelled:
            raise RuntimeError("event was cancelled")
        self.triggered = True
        self.value = value
        if self.callbacks:
            callbacks, self.callbacks = self.callbacks, []
            for cb in callbacks:
                cb(self)
        waiters = self._waiters
        if waiters:
            self._waiters = None
            engine = self.engine
            if engine._rec is None:
                # Fast path: the dominant timeout -> single-waiter ->
                # step chain pushes the step entry directly, with no
                # recorder bump and no intermediate method call.
                heap = engine._heap
                now = engine.now
                seq = engine._seq
                for proc in waiters:
                    _heappush(heap, (now, seq, _KIND_STEP, proc, value))
                    seq += 1
                engine._seq = seq
            else:
                for proc in waiters:
                    engine._ready(proc, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event as *failed*: every waiter has ``exc`` thrown
        into it at the current simulation time, and join callbacks see
        ``self.failed`` set.  Used to surface rank deaths to peers."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        if self.cancelled:
            raise RuntimeError("event was cancelled")
        self.triggered = True
        self.failed = exc
        if self.callbacks:
            callbacks, self.callbacks = self.callbacks, []
            for cb in callbacks:
                cb(self)
        waiters = self._waiters
        if waiters:
            self._waiters = None
            for proc in waiters:
                self.engine._schedule_throw(proc, exc)
        return self

    def add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            if self.failed is not None:
                self.engine._schedule_throw(proc, self.failed)
            else:
                self.engine._ready(proc, self.value)
        elif self._waiters is None:
            self._waiters = [proc]
        else:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        """Withdraw a waiting process (used by :meth:`Process.interrupt`).

        O(n) in the number of waiters on this event — a linear scan.
        Fine at the simulator's fan-ins (an event rarely has more than a
        handful of waiters; the heavy fan-in constructs ``all_of`` /
        ``any_of`` use callbacks, not waiters).  If interrupt-heavy
        workloads ever wait thousands of processes on one event, replace
        the list with an ordered dict keyed by process.
        """
        if self._waiters is not None:
            try:
                self._waiters.remove(proc)
            except ValueError:
                pass

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        """Remove every occurrence of ``cb`` (O(n) in callback count)."""
        self.callbacks = [c for c in self.callbacks if c is not cb]

    def cancel(self) -> None:
        """Retire a pending timer event that nothing waits on any more.

        The canonical caller is ``recv(timeout=...)`` after the message
        won the race: the losing watchdog timer would otherwise sit in
        the scheduler heap until its (possibly far-future) expiry,
        growing the heap without bound in long-running apps and — worse
        — stretching ``Engine.run``'s drain (and therefore a run's
        makespan) out to the dead timer's firing time.

        Cancellation is lazy: the heap entry is skipped *silently* when
        popped (no ``fire`` instant, no clock advance), and the heap is
        compacted in place once cancelled entries outnumber live ones.
        A triggered or already-cancelled event is a no-op.  Only cancel
        events with no remaining waiters/callbacks that matter: both
        lists are dropped here.
        """
        if self.triggered or self.cancelled:
            return
        self.cancelled = True
        self._waiters = None
        self.callbacks = []
        self.engine._note_cancelled()


class Process:
    """A running generator-based simulated process."""

    __slots__ = (
        "engine", "gen", "name", "done", "result", "failure",
        "_completion", "_waiting_on", "_rec",
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.result: Any = None
        self.failure: SimFailure | None = None
        self._completion = Event(engine)
        self._waiting_on: Event | None = None
        self._rec = engine._rec  # fixed for the engine's lifetime

    @property
    def completion(self) -> Event:
        """Event fired (with the return value) when the process finishes."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        self.throw(Interrupt(cause))

    def throw(self, exc: BaseException) -> None:
        """Throw an arbitrary exception into the process at the current
        time (the cancellation primitive fault injection kills ranks
        with).  A no-op on finished processes."""
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.engine._schedule_throw(self, exc)

    def _step(self, value: Any = None, exc: BaseException | None = None) -> None:
        if self.done:
            # Stale wakeup: a same-timestamp step that completed the
            # process was already dispatched (e.g. an event succeeded
            # and a throw was queued behind it).  Stepping the finished
            # generator would leak the exception out of Engine.run.
            return
        rec = self._rec
        if rec is not None:
            rec.instant(f"step:{self.name}", "engine", self.engine.now)
        if exc is not None and self._waiting_on is not None:
            # A queued throw dispatched after the process re-armed on
            # another event: withdraw from that event's waiter list, or
            # its later firing would step a wait that no longer exists.
            self._waiting_on.remove_waiter(self)
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        except SimFailure as failure:
            # A modelled fault killed the process: contain it.  The
            # failed completion event propagates the failure to joiners
            # (e.g. a rank waiting on a spawned panel pipeline).
            self.done = True
            self.failure = failure
            self._completion.fail(failure)
            return
        cls = target.__class__
        if cls is not Event:
            if cls is Process or isinstance(target, Process):
                target = target._completion
            elif not isinstance(target, Event):
                raise TypeError(
                    f"process {self.name!r} yielded {type(target).__name__}; "
                    "processes must yield Event or Process objects"
                )
        self._waiting_on = target
        # Inlined Event.add_waiter — this is the single hottest call
        # site (every yield lands here).
        if target.triggered:
            if target.failed is not None:
                self.engine._schedule_throw(self, target.failed)
            else:
                self.engine._ready(self, target.value)
        elif target._waiters is None:
            target._waiters = [self]
        else:
            target._waiters.append(self)


class Engine:
    """The simulation clock and scheduler.

    An engine constructed while :func:`repro.obs.recorder.enable` is in
    effect captures the active recorder for its lifetime and emits
    schedule/fire/step events into it; otherwise ``_rec`` is ``None``
    and every hook reduces to one ``is None`` check.
    """

    __slots__ = ("now", "_heap", "_seq", "_active", "_rec", "_cancelled")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, int, Any, Any]] = []
        self._seq = 0
        self._active = 0  # live (not finished) processes
        self._rec = _obs_current()
        self._cancelled = 0  # cancelled timer entries still in the heap

    def _note_cancelled(self) -> None:
        """Account one :meth:`Event.cancel`; compact the heap once dead
        entries outnumber live ones (asyncio's strategy), so cancel-heavy
        workloads keep the heap O(live timers), amortised O(1) per
        cancel.  Compaction filters a list and re-heapifies; pop order
        is untouched because ``(time, seq)`` stays a total order."""
        self._cancelled += 1
        if self._rec is not None:
            self._rec.bump("engine.cancelled")
        heap = self._heap
        if self._cancelled > 64 and self._cancelled * 2 > len(heap):
            # In place (slice assignment): the run loops hold a local
            # alias of the heap list, which must stay valid.
            heap[:] = [
                entry
                for entry in heap
                if not (entry[2] == _KIND_TIMEOUT and entry[3].cancelled)
            ]
            heapq.heapify(heap)
            self._cancelled = 0

    # -- low-level scheduling --------------------------------------------
    def _push(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule an arbitrary callable (the slow, general entry —
        internal hot paths push typed entries directly)."""
        if time < self.now - 1e-15:
            raise ValueError("cannot schedule in the past")
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (time, self._seq, _KIND_CALL, fn, None))
        self._seq += 1

    def _ready(self, proc: Process, value: Any) -> None:
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (self.now, self._seq, _KIND_STEP, proc, value))
        self._seq += 1

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (self.now, self._seq, _KIND_THROW, proc, exc))
        self._seq += 1

    # -- public API --------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def call_in(self, delay: float, fn: Callable[..., None]) -> None:
        """Schedule a bare callable ``delay`` seconds from now.

        The allocation-free alternative to ``timeout(delay).callbacks
        .append(fn)`` for fire-and-forget work (message delivery): no
        Event is built, and exactly one sequence number is consumed —
        the same as ``timeout`` — so swapping one for the other leaves
        every later event's dispatch order untouched.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (self.now + delay, self._seq, _KIND_CALL, fn, None))
        self._seq += 1

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        ev = Event(self)
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (self.now + delay, self._seq, _KIND_TIMEOUT, ev, value))
        self._seq += 1
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process (runs from now)."""
        proc = Process(self, gen, name=name)
        self._active += 1
        proc._completion.callbacks.append(self._finished)
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        _heappush(self._heap, (self.now, self._seq, _KIND_STEP, proc, None))
        self._seq += 1
        return proc

    def _finished(self, _ev: Event) -> None:
        self._active -= 1

    def all_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when every given event has fired.

        ``all_of([])`` succeeds immediately with ``[]`` — the vacuous
        join (a rank with zero outstanding sends is done waiting).

        If any constituent *fails*, the join fails immediately with the
        same exception — a rank waiting on a batch of sends/receives
        learns of a dead peer at failure time, not at drain time.
        """
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        joined = Event(self)
        for e in evs:
            if e.failed is not None:
                joined.fail(e.failed)
                return joined
        pending = sum(1 for e in evs if not e.triggered)
        if pending == 0:
            joined.succeed([e.value for e in evs])
            return joined
        state = {"pending": pending}

        def on_fire(ev: Event) -> None:
            if joined.triggered:
                return
            if ev.failed is not None:
                joined.fail(ev.failed)
                return
            state["pending"] -= 1
            if state["pending"] == 0:
                joined.succeed([e.value for e in evs])

        for e in evs:
            if not e.triggered:
                e.callbacks.append(on_fire)
        return joined

    def any_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when the FIRST of the given events fires,
        carrying that event's value.  Later firings are ignored.

        ``any_of([])`` raises :class:`ValueError`: there is no first of
        nothing, and the old behaviour — an event that never fires —
        silently deadlocked any waiter (contrast ``all_of([])``, which
        is a well-defined vacuous join and succeeds immediately).

        On first fire the join callback is removed from every *losing*
        event, so long-lived losers (e.g. a 100 s watchdog timeout that
        lost to a fast receive) do not pin the joined event — and
        everything reachable from it — until they eventually fire.
        Removal is O(total callbacks across the losers), paid once.
        """
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        if not evs:
            raise ValueError(
                "any_of([]) can never fire; a waiter would deadlock "
                "(all_of([]) is the vacuous join that succeeds)"
            )
        joined = Event(self)
        for e in evs:
            if e.triggered:
                if e.failed is not None:
                    joined.fail(e.failed)
                else:
                    joined.succeed(e.value)
                return joined

        def on_fire(ev: Event) -> None:
            if not joined.triggered:
                if ev.failed is not None:
                    joined.fail(ev.failed)
                else:
                    joined.succeed(ev.value)
                for other in evs:
                    # The winner's lists were already dropped by its
                    # succeed(); duplicates of a loser are all removed.
                    if other is not ev and not other.triggered:
                        other.remove_callback(on_fire)

        for e in evs:
            e.callbacks.append(on_fire)
        return joined

    def run(self, until: float | None = None) -> float:
        """Execute events until the heap drains (or ``until`` is reached).
        Returns the final simulation time, which is ``until`` when one
        was given and is ahead of the last dispatched event — whether
        the loop stopped at a future event or the heap drained early —
        so ``run(until=t)`` always leaves ``now`` at ``t`` at least.
        """
        if self._rec is not None:
            return self._run_traced(until)
        heap = self._heap
        pop = _heappop
        push = _heappush
        bounded = until is not None
        while heap:
            if bounded and heap[0][0] > until:
                self.now = until
                return until
            time, _seq, kind, obj, arg = pop(heap)
            if kind == _KIND_TIMEOUT:
                if obj.cancelled:
                    # A retired timer: skip silently, without advancing
                    # the clock — a dead watchdog must not stretch the
                    # drain time.
                    self._cancelled -= 1
                    continue
                self.now = time
                # Inlined Event.succeed for the dominant case — a timer
                # firing straight into its (usually single) waiter.
                if obj.triggered:
                    raise RuntimeError("event already triggered")
                obj.triggered = True
                obj.value = arg
                if obj.callbacks:
                    callbacks, obj.callbacks = obj.callbacks, []
                    for cb in callbacks:
                        cb(obj)
                waiters = obj._waiters
                if waiters:
                    obj._waiters = None
                    seq = self._seq
                    for proc in waiters:
                        push(heap, (time, seq, _KIND_STEP, proc, arg))
                        seq += 1
                    self._seq = seq
            elif kind == _KIND_STEP:
                self.now = time
                obj._step(arg)
            elif kind == _KIND_THROW:
                self.now = time
                obj._step(None, arg)
            else:
                self.now = time
                obj()
        if bounded and self.now < until:
            self.now = until
        return self.now

    def run_until(self, event: Event) -> float:
        """Execute events until ``event`` triggers (succeeds or fails)
        or the heap drains.  Unfired heap entries — in-flight transfers,
        a fault daemon's future crash timer — are abandoned, which is
        exactly what a fault-tolerant runner wants: the clock stops when
        the job completes (or dies), not when the last watchdog expires.
        """
        rec = self._rec
        heap = self._heap
        pop = _heappop
        while heap and not event.triggered:
            time, seq, kind, obj, arg = pop(heap)
            if kind == _KIND_TIMEOUT and obj.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            if rec is not None:
                rec.instant("fire", "engine", time, seq=seq)
            if kind == _KIND_TIMEOUT:
                obj.succeed(arg)
            elif kind == _KIND_STEP:
                obj._step(arg)
            elif kind == _KIND_THROW:
                obj._step(None, arg)
            else:
                obj()
        return self.now

    def _run_traced(self, until: float | None) -> float:
        """The :meth:`run` loop with a fire instant per dispatched event
        — kept separate so the untraced loop stays branch-free."""
        rec = self._rec
        heap = self._heap
        pop = _heappop
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return until
            time, seq, kind, obj, arg = pop(heap)
            if kind == _KIND_TIMEOUT and obj.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            rec.instant("fire", "engine", time, seq=seq)
            if kind == _KIND_TIMEOUT:
                obj.succeed(arg)
            elif kind == _KIND_STEP:
                obj._step(arg)
            elif kind == _KIND_THROW:
                obj._step(None, arg)
            else:
                obj()
        if until is not None and self.now < until:
            self.now = until
        return self.now
