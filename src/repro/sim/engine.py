"""A minimal deterministic discrete-event engine.

Design:

* :class:`Event` — a one-shot occurrence that fires at a scheduled time
  (or when explicitly succeeded) and carries an optional value.
* :class:`Process` — wraps a generator.  The generator yields events;
  the process sleeps until the yielded event fires, then is resumed with
  the event's value.  A process is itself awaitable (its completion is
  an event), enabling fork/join structures.
* :class:`Engine` — the event heap and clock.  Ties are broken by a
  monotonically increasing sequence number, so runs are deterministic.

The engine is single-threaded and allocation-light: a 192-rank MPI
program with tens of thousands of messages simulates in well under a
second, which is what the Figure 6 scalability sweeps need.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable


class Interrupt(Exception):
    """Raised inside a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event; processes wait on it by yielding it."""

    __slots__ = ("engine", "triggered", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []
        self.callbacks: list[Callable[[Event], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event immediately (at the current simulation time)."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self.callbacks:
            cb(self)
        for proc in self._waiters:
            self.engine._ready(proc, value)
        self._waiters.clear()
        return self

    def add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.engine._ready(proc, self.value)
        else:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)


class Process:
    """A running generator-based simulated process."""

    __slots__ = ("engine", "gen", "name", "done", "result", "_completion", "_waiting_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.result: Any = None
        self._completion = Event(engine)
        self._waiting_on: Event | None = None

    @property
    def completion(self) -> Event:
        """Event fired (with the return value) when the process finishes."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.engine._schedule_throw(self, Interrupt(cause))

    def _step(self, value: Any = None, exc: BaseException | None = None) -> None:
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        if isinstance(target, Process):
            target = target.completion
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield Event or Process objects"
            )
        self._waiting_on = target
        target.add_waiter(self)


class Engine:
    """The simulation clock and scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._active = 0  # live (not finished) processes

    # -- low-level scheduling --------------------------------------------
    def _push(self, time: float, fn: Callable[[], None]) -> None:
        if time < self.now - 1e-15:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def _ready(self, proc: Process, value: Any) -> None:
        self._push(self.now, lambda: proc._step(value))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._push(self.now, lambda: proc._step(exc=exc))

    # -- public API --------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        ev = Event(self)
        self._push(self.now + delay, lambda: ev.succeed(value))
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process (runs from now)."""
        proc = Process(self, gen, name=name)
        self._active += 1
        proc.completion.callbacks.append(lambda _ev: self._finished())
        self._push(self.now, lambda: proc._step(None))
        return proc

    def _finished(self) -> None:
        self._active -= 1

    def all_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when every given event has fired."""
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        joined = Event(self)
        pending = sum(1 for e in evs if not e.triggered)
        if pending == 0:
            joined.succeed([e.value for e in evs])
            return joined
        state = {"pending": pending}

        def on_fire(_ev: Event) -> None:
            state["pending"] -= 1
            if state["pending"] == 0:
                joined.succeed([e.value for e in evs])

        for e in evs:
            if not e.triggered:
                e.callbacks.append(on_fire)
        return joined

    def any_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when the FIRST of the given events fires,
        carrying that event's value.  Later firings are ignored."""
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        joined = Event(self)
        for e in evs:
            if e.triggered:
                joined.succeed(e.value)
                return joined
        def on_fire(ev: Event) -> None:
            if not joined.triggered:
                joined.succeed(ev.value)
        for e in evs:
            e.callbacks.append(on_fire)
        return joined

    def run(self, until: float | None = None) -> float:
        """Execute events until the heap drains (or ``until`` is reached).
        Returns the final simulation time."""
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            fn()
        return self.now
