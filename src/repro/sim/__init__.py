"""Discrete-event simulation engine (processes as generators).

A tiny SimPy-like kernel: :class:`~repro.sim.engine.Engine` maintains a
time-ordered event heap; simulated processes are Python generators that
``yield`` :class:`~repro.sim.engine.Event` objects and are resumed when
those events fire.  The MPI simulator (:mod:`repro.mpi`) builds ranks,
point-to-point messaging and collectives on top of it.
"""

from repro.sim.engine import Engine, Event, Interrupt, Process

__all__ = ["Engine", "Event", "Process", "Interrupt"]
