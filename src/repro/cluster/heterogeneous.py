"""Heterogeneous clusters — the FAWN follow-up's proposal (Section 2).

Lang et al. [25] found homogeneous low-power clusters unsuited to
complex workloads and proposed "future research in heterogeneous
clusters using low-power nodes combined with conventional ones".  This
module makes that proposal executable over our node models:

* a :class:`HeterogeneousCluster` mixes node types;
* :func:`static_partition_speedup` shows the classic failure mode — an
  *unweighted* split of divisible work is gated by the slow nodes;
* :func:`weighted_partition_speedup` shows the fix (work proportional
  to node throughput), and :func:`efficiency_per_watt` shows where the
  mixed design actually pays: throughput per watt under a power cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.soc import Platform
from repro.cluster.node import ClusterNode


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous group inside a heterogeneous cluster."""

    platform: Platform
    count: int
    freq_ghz: float
    node_watts: float  # wall power per busy node

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("group needs at least one node")
        if self.node_watts <= 0:
            raise ValueError("node power must be positive")

    def node(self) -> ClusterNode:
        return ClusterNode(0, self.platform, self.freq_ghz)

    def group_gflops(self, workload: str = "dgemm") -> float:
        return self.count * self.node().achieved_gflops(workload)

    def group_watts(self) -> float:
        return self.count * self.node_watts


class HeterogeneousCluster:
    """A cluster of mixed node groups running one divisible workload."""

    def __init__(self, groups: list[NodeGroup]) -> None:
        if not groups:
            raise ValueError("need at least one group")
        self.groups = groups

    @property
    def n_nodes(self) -> int:
        return sum(g.count for g in self.groups)

    def total_gflops(self, workload: str = "dgemm") -> float:
        return sum(g.group_gflops(workload) for g in self.groups)

    def total_watts(self) -> float:
        return sum(g.group_watts() for g in self.groups)

    # -- partitioning models ------------------------------------------------
    def static_partition_time_s(
        self, total_flops: float, workload: str = "dgemm"
    ) -> float:
        """Equal work per node: finish time is gated by the slowest node
        (the [25] failure mode for homogeneity-assuming software)."""
        if total_flops <= 0:
            raise ValueError("work must be positive")
        per_node = total_flops / self.n_nodes
        return max(
            per_node / (g.node().achieved_gflops(workload) * 1e9)
            for g in self.groups
        )

    def weighted_partition_time_s(
        self, total_flops: float, workload: str = "dgemm"
    ) -> float:
        """Work proportional to throughput: every node finishes together
        (the ideal a heterogeneity-aware runtime approaches)."""
        if total_flops <= 0:
            raise ValueError("work must be positive")
        return total_flops / (self.total_gflops(workload) * 1e9)

    def static_efficiency(self, workload: str = "dgemm") -> float:
        """Fraction of aggregate throughput an unweighted split keeps."""
        flops = 1e12
        return self.weighted_partition_time_s(
            flops, workload
        ) / self.static_partition_time_s(flops, workload)

    def gflops_per_watt(self, workload: str = "dgemm") -> float:
        return self.total_gflops(workload) / self.total_watts()


def best_mix_under_power_cap(
    fast: NodeGroup,
    slow: NodeGroup,
    power_cap_w: float,
    workload: str = "dgemm",
) -> dict[str, float]:
    """Sweep fast:slow node mixes under a power cap and report the
    throughput-maximising one (with weighted partitioning).

    ``fast``/``slow`` describe one node each (``count`` ignored).
    """
    if power_cap_w <= 0:
        raise ValueError("power cap must be positive")
    fast_one = NodeGroup(fast.platform, 1, fast.freq_ghz, fast.node_watts)
    slow_one = NodeGroup(slow.platform, 1, slow.freq_ghz, slow.node_watts)
    f_gf = fast_one.group_gflops(workload)
    s_gf = slow_one.group_gflops(workload)
    best = {"n_fast": 0.0, "n_slow": 0.0, "gflops": 0.0}
    max_fast = int(power_cap_w // fast.node_watts)
    for n_fast in range(max_fast + 1):
        remaining = power_cap_w - n_fast * fast.node_watts
        n_slow = int(remaining // slow.node_watts)
        gflops = n_fast * f_gf + n_slow * s_gf
        if gflops > best["gflops"] and n_fast + n_slow > 0:
            best = {
                "n_fast": float(n_fast),
                "n_slow": float(n_slow),
                "gflops": gflops,
            }
    best["gflops_per_watt"] = best["gflops"] / power_cap_w
    return best
