"""Whole-cluster power — the Green500 side of the evaluation.

Section 4: running HPL on 96 nodes, Tibidabo delivered 97 GFLOPS at an
energy efficiency of 120 MFLOPS/W, "competitive with AMD Opteron 6174
and Intel Xeon E5660-based clusters, but nineteen times lower than ...
BlueGene/Q, and almost 27 times lower than ... the Eurotech Eurora
cluster".

A Tibidabo node is a bare Q7 module in a rack chassis, not a full
developer kit, so its power is lower than the Section 3 board figure:
SoC + DRAM + NIC + VRM losses.  The model is calibrated so the 96-node
HPL run lands near the paper's 120 MFLOPS/W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster

#: June 2013 Green500 reference points (MFLOPS/W) quoted in Section 4.
GREEN500_REFERENCES = {
    "Tibidabo (paper)": 120.0,
    "BlueGene/Q (best homogeneous)": 2300.0,
    "Eurotech Eurora (K20 GPU, #1)": 3210.0,
    "AMD Opteron 6174 cluster": 120.0,
    "Intel Xeon E5660 cluster": 130.0,
}


@dataclass(frozen=True)
class ClusterPowerModel:
    """Rack-level power model for an SoC cluster.

    :param module_base_watts: per-node constant draw (DRAM, NIC, VRM
        losses, module logic) excluding the CPU cores.
    :param switch_watts: per-switch draw.
    :param psu_efficiency: AC/DC conversion efficiency (losses are added
        on top of the DC figures).
    """

    module_base_watts: float = 3.5
    switch_watts: float = 40.0
    psu_efficiency: float = 0.90

    def __post_init__(self) -> None:
        if self.module_base_watts < 0 or self.switch_watts < 0:
            raise ValueError("power terms must be non-negative")
        if not (0.0 < self.psu_efficiency <= 1.0):
            raise ValueError("psu efficiency must be in (0, 1]")

    def node_power_watts(
        self, cluster: Cluster, active_cores: int | None = None
    ) -> float:
        """DC power of one busy node."""
        node = cluster.nodes[0]
        soc = node.platform.soc
        cores = soc.n_cores if active_cores is None else active_cores
        if not (0 <= cores <= soc.n_cores):
            raise ValueError("active_cores out of range")
        core_power = cores * soc.power.core_power(node.freq_ghz)
        return (
            self.module_base_watts + soc.power.soc_static_watts + core_power
        )

    def n_switches(self, cluster: Cluster) -> int:
        """Leaf switches plus one core switch when there are several."""
        leaves = cluster.topology.n_leaves
        return leaves if leaves == 1 else leaves + 1

    def total_power_watts(
        self, cluster: Cluster, active_cores: int | None = None
    ) -> float:
        """Wall (AC) power of the whole cluster under load."""
        dc = (
            cluster.n_nodes * self.node_power_watts(cluster, active_cores)
            + self.n_switches(cluster) * self.switch_watts
        )
        return dc / self.psu_efficiency

    def sample(
        self,
        cluster: Cluster,
        t_s: float,
        active_cores: int | None = None,
    ) -> float:
        """One wall-power sample at simulated time ``t_s``, recorded as
        a ``cluster.power_w`` counter when tracing is enabled (the
        observability layer's stand-in for the paper's Yokogawa meter
        readings).  Returns the sampled watts either way."""
        from repro.obs.recorder import current as _obs_current

        watts = self.total_power_watts(cluster, active_cores)
        rec = _obs_current()
        if rec is not None:
            rec.counter("cluster.power_w", t_s, watts)
        return watts

    def mflops_per_watt(
        self,
        cluster: Cluster,
        achieved_gflops: float,
        active_cores: int | None = None,
    ) -> float:
        """The Green500 metric for a run achieving ``achieved_gflops``."""
        if achieved_gflops < 0:
            raise ValueError("achieved GFLOPS must be non-negative")
        power = self.total_power_watts(cluster, active_cores)
        return achieved_gflops * 1e3 / power

    def gap_to(self, reference: str, measured_mflops_w: float) -> float:
        """How many times below a Green500 reference point we are."""
        ref = GREEN500_REFERENCES[reference]
        if measured_mflops_w <= 0:
            raise ValueError("measured efficiency must be positive")
        return ref / measured_mflops_w
