"""A cluster compute node.

Tibidabo's node is an NVIDIA Tegra 2 on a SECO Q7 module: two Cortex-A9
cores, 1 GB DDR2, and a 1 GbE NIC attached over PCIe (Section 4).  The
node model wraps a :class:`~repro.arch.soc.Platform` with the achieved
application throughput (no vendor-tuned BLAS existed for ARM — one of
the paper's stated reasons for the modest HPL efficiency) and the NIC
attachment used to build its protocol stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.soc import Platform
from repro.net.nic import NICAttachment, attachment_for

#: Fraction of peak FP64 achieved by the dominant compute phase of each
#: application class, out-of-the-box toolchain (Section 5: natively
#: compiled ATLAS, no vendor library, "compiled and executed
#: out-of-the-box, without any tuning").
ACHIEVED_FRACTION = {
    "dgemm": 0.68,  # ATLAS DGEMM on Cortex-A9 (drives HPL)
    "stencil": 0.40,
    "particle": 0.45,
    "spectral": 0.50,
    "generic": 0.45,
}


@dataclass(frozen=True)
class ClusterNode:
    """One compute node of a cluster.

    :param node_id: position in the cluster (also the default MPI rank).
    :param platform: the SoC/board model.
    :param freq_ghz: operating frequency (performance governor).
    :param ranks_per_node: MPI ranks placed on the node.
    """

    node_id: int
    platform: Platform
    freq_ghz: float
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not (1 <= self.ranks_per_node <= self.platform.soc.n_cores):
            raise ValueError("ranks_per_node must fit the core count")

    @property
    def nic(self) -> NICAttachment:
        return attachment_for(self.platform.board.nic_attachment)

    @property
    def cores(self) -> int:
        return self.platform.soc.n_cores

    @property
    def memory_bytes(self) -> int:
        return self.platform.board.dram_bytes

    def peak_gflops(self) -> float:
        """Peak FP64 GFLOPS of the whole node."""
        return self.platform.soc.peak_gflops(self.freq_ghz)

    def achieved_gflops(self, workload: str = "dgemm") -> float:
        """Achieved GFLOPS of the node's dominant compute phase."""
        try:
            frac = ACHIEVED_FRACTION[workload]
        except KeyError:
            raise KeyError(
                f"unknown workload class {workload!r}; "
                f"known: {sorted(ACHIEVED_FRACTION)}"
            ) from None
        cores_per_rank = self.cores / self.ranks_per_node
        return (
            self.platform.soc.core.peak_gflops(self.freq_ghz)
            * cores_per_rank
            * frac
        )

    def usable_memory_bytes(self, os_reserve_fraction: float = 0.25) -> int:
        """Memory available to the application (the OS, NFS caches and
        the 32-bit address-space overheads eat the rest)."""
        if not (0.0 <= os_reserve_fraction < 1.0):
            raise ValueError("reserve fraction must be in [0, 1)")
        return int(self.memory_bytes * (1.0 - os_reserve_fraction))
