"""Minimal SLURM-like batch scheduler.

Section 5: "Each node was also configured to run a SLURM client for job
scheduling across the cluster nodes."  This is a functional FIFO +
conservative-backfill scheduler over a fixed node pool — enough to run
the benchmark campaigns the examples script, and a substrate the tests
exercise for the classic invariants (no node oversubscription, FIFO
fairness, backfill never delaying the queue head).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass
class Job:
    """A batch job request."""

    name: str
    n_nodes: int
    duration_s: float
    submit_s: float = 0.0
    job_id: int = -1
    start_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("jobs need at least one node")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.submit_s < 0:
            raise ValueError("submit time must be non-negative")

    @property
    def end_s(self) -> float | None:
        return None if self.start_s is None else self.start_s + self.duration_s

    @property
    def wait_s(self) -> float | None:
        return None if self.start_s is None else self.start_s - self.submit_s


class SlurmScheduler:
    """FIFO scheduler with conservative backfill over ``n_nodes`` nodes."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("cluster needs nodes")
        self.n_nodes = n_nodes
        self._ids = itertools.count(1)
        self.queue: list[Job] = []
        self.scheduled: list[Job] = []

    def submit(self, job: Job) -> int:
        """Enqueue a job; returns its id."""
        if job.n_nodes > self.n_nodes:
            raise ValueError(
                f"job {job.name!r} wants {job.n_nodes} nodes; "
                f"cluster has {self.n_nodes}"
            )
        job.job_id = next(self._ids)
        self.queue.append(job)
        return job.job_id

    # ------------------------------------------------------------------
    def _nodes_free_at(self, t: float) -> int:
        used = sum(
            j.n_nodes
            for j in self.scheduled
            if j.start_s is not None and j.start_s <= t < j.end_s
        )
        return self.n_nodes - used

    def _earliest_start(self, job: Job, not_before: float) -> float:
        """Earliest time >= not_before with enough free nodes for the
        whole duration of ``job``."""
        horizon = sorted(
            {not_before}
            | {j.start_s for j in self.scheduled if j.start_s is not None}
            | {j.end_s for j in self.scheduled if j.end_s is not None}
        )
        for t in horizon:
            if t < not_before:
                continue
            boundaries = [
                b
                for j in self.scheduled
                for b in (j.start_s, j.end_s)
                if b is not None and t <= b < t + job.duration_s
            ]
            if all(
                self._nodes_free_at(x) >= job.n_nodes
                for x in [t] + boundaries
            ):
                return t
        return max(horizon) if horizon else not_before

    def schedule(self) -> list[Job]:
        """Assign start times: FIFO for the head, conservative backfill
        for the rest (a later job may start early only if that does not
        delay any earlier job's reserved start)."""
        self.queue.sort(key=lambda j: (j.submit_s, j.job_id))
        for job in self.queue:
            start = self._earliest_start(job, job.submit_s)
            job.start_s = start
            self.scheduled.append(job)
        self.queue = []
        return sorted(self.scheduled, key=lambda j: j.job_id)

    def drain(self, t: float, n_drained: int) -> tuple[list[Job], list[Job]]:
        """Drain ``n_drained`` nodes at time ``t`` (node failure / admin
        drain) and requeue the displaced work.

        Semantics, oldest-first like SLURM's own node-failure path:

        * Jobs already *finished* by ``t`` are untouched.
        * Jobs *running* at ``t`` are kept on the shrunken pool in job-id
          order while they still fit; the rest are killed and requeued
          from ``t``.
        * Jobs scheduled to start *after* ``t`` lose their reservation
          and are requeued (the pool changed under them).
        * Requeued jobs that no longer fit the shrunken pool at all are
          dropped and returned separately.

        Returns ``(requeued, dropped)``.  Call :meth:`schedule` to place
        the requeued jobs on the survivors.
        """
        if t < 0:
            raise ValueError("drain time must be non-negative")
        if not (0 < n_drained < self.n_nodes):
            raise ValueError(
                f"can drain 1..{self.n_nodes - 1} of {self.n_nodes} nodes"
            )
        self.n_nodes -= n_drained
        finished, running, future = [], [], []
        for job in self.scheduled:
            if job.end_s is not None and job.end_s <= t:
                finished.append(job)
            elif job.start_s is not None and job.start_s <= t:
                running.append(job)
            else:
                future.append(job)
        running.sort(key=lambda j: j.job_id)
        kept, displaced = [], []
        used = 0
        for job in running:
            if used + job.n_nodes <= self.n_nodes:
                kept.append(job)
                used += job.n_nodes
            else:
                displaced.append(job)
        requeued, dropped = [], []
        for job in displaced + future:
            job.start_s = None
            job.submit_s = max(job.submit_s, t)
            if job.n_nodes > self.n_nodes:
                dropped.append(job)
            else:
                requeued.append(job)
        self.scheduled = finished + kept
        self.queue.extend(requeued)
        from repro.obs.recorder import current as _obs_current

        rec = _obs_current()
        if rec is not None:
            rec.instant(
                "slurm.drain", "fault", t,
                drained=n_drained, requeued=len(requeued),
                dropped=len(dropped),
            )
            rec.bump("slurm.nodes_drained", n_drained)
            rec.bump("slurm.jobs_requeued", len(requeued))
        return requeued, dropped

    def makespan_s(self) -> float:
        """Completion time of the last scheduled job."""
        ends = [j.end_s for j in self.scheduled if j.end_s is not None]
        return max(ends) if ends else 0.0

    def utilisation(self) -> float:
        """Node-seconds used over node-seconds available until makespan."""
        span = self.makespan_s()
        if span == 0:
            return 0.0
        used = sum(
            j.n_nodes * j.duration_s
            for j in self.scheduled
            if j.start_s is not None
        )
        return used / (self.n_nodes * span)
