"""Reliability models — Section 6's quantitative claims.

Three independent pieces:

* :class:`DramErrorModel` — the Schroeder et al. field-study arithmetic
  behind the paper's headline: "4% to 20% of all DIMMs encounter a
  correctable error [per year] ... these figures suggest that a 1,500
  node system, with 2 DIMMs per node, has a 30% error probability on any
  given day" — and mobile SoCs have no ECC to correct them.
* :class:`ThermalModel` — a first-order RC model of the heatsink-less
  developer boards: "after continued use at the maximum frequency, both
  the SoC and power supply circuitry overheat, causing the board to
  become unstable" (Section 6.1).
* :class:`PCIeFaultInjector` — the flaky Tegra PCIe root complex:
  initialisation failures at boot and hangs under sustained load
  (Section 6.1), for failure-injection testing of cluster runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.recorder import current as _obs_current


@dataclass(frozen=True)
class DramErrorModel:
    """Field DRAM error arithmetic (Schroeder, Pinheiro, Weber 2009).

    :param annual_dimm_error_rate: probability that a DIMM sees at least
        one correctable error within a year (the study's 4%–20% range).
    """

    annual_dimm_error_rate: float = 0.04

    def __post_init__(self) -> None:
        if not (0.0 < self.annual_dimm_error_rate < 1.0):
            raise ValueError("annual rate must be in (0, 1)")

    def daily_dimm_error_probability(self) -> float:
        """Per-DIMM probability of an error on a given day, assuming
        independent days: ``1 - (1 - annual)^(1/365)``."""
        return 1.0 - (1.0 - self.annual_dimm_error_rate) ** (1.0 / 365.0)

    def system_daily_error_probability(
        self, n_nodes: int, dimms_per_node: int = 2
    ) -> float:
        """Probability that at least one DIMM in the system errs today."""
        if n_nodes <= 0 or dimms_per_node <= 0:
            raise ValueError("counts must be positive")
        p = self.daily_dimm_error_probability()
        n = n_nodes * dimms_per_node
        return 1.0 - (1.0 - p) ** n

    def mean_days_between_errors(
        self, n_nodes: int, dimms_per_node: int = 2
    ) -> float:
        """Expected days between system-level DRAM errors."""
        p_day = self.system_daily_error_probability(n_nodes, dimms_per_node)
        return 1.0 / p_day

    def job_failure_probability(
        self,
        n_nodes: int,
        job_hours: float,
        dimms_per_node: int = 2,
        ecc: bool = False,
    ) -> float:
        """Probability that an uncorrected DRAM error lands inside a job.

        With ECC the (correctable) errors are absorbed; without it — the
        mobile-SoC situation — every one is a potential silent crash or
        corruption."""
        if job_hours <= 0:
            raise ValueError("job duration must be positive")
        if ecc:
            return 0.0
        p_dimm_day = self.daily_dimm_error_probability()
        rate_per_hour = -math.log(1.0 - p_dimm_day) / 24.0
        n = n_nodes * dimms_per_node
        return 1.0 - math.exp(-rate_per_hour * n * job_hours)


@dataclass(frozen=True)
class ThermalModel:
    """First-order thermal RC model of a fanless developer board.

    Die temperature under constant power ``P`` follows
    ``T(t) = T_amb + P * R * (1 - exp(-t / tau))``.

    :param r_c_per_w: junction-to-ambient thermal resistance (degC/W) —
        large without a heatsink.
    :param tau_s: thermal time constant.
    :param t_ambient: ambient temperature (degC).
    :param t_unstable: temperature at which the board destabilises.
    """

    r_c_per_w: float = 14.0
    tau_s: float = 120.0
    t_ambient: float = 30.0
    t_unstable: float = 95.0

    def __post_init__(self) -> None:
        if min(self.r_c_per_w, self.tau_s) <= 0:
            raise ValueError("R and tau must be positive")
        if self.t_unstable <= self.t_ambient:
            raise ValueError("instability threshold must exceed ambient")

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium die temperature at constant ``power_w``."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        return self.t_ambient + power_w * self.r_c_per_w

    def temperature_c(self, power_w: float, t_s: float) -> float:
        """Die temperature after ``t_s`` seconds at constant power."""
        if t_s < 0:
            raise ValueError("time must be non-negative")
        if power_w < 0:
            raise ValueError("power must be non-negative")
        rise = power_w * self.r_c_per_w
        return self.t_ambient + rise * (1.0 - math.exp(-t_s / self.tau_s))

    def becomes_unstable(self, power_w: float) -> bool:
        """Whether sustained load eventually destabilises the board."""
        return self.steady_state_c(power_w) > self.t_unstable

    def time_to_instability_s(self, power_w: float) -> float:
        """Seconds of sustained load before instability (``inf`` if the
        steady state stays below the threshold)."""
        steady = self.steady_state_c(power_w)
        if steady <= self.t_unstable:
            return math.inf
        frac = (self.t_unstable - self.t_ambient) / (steady - self.t_ambient)
        return -self.tau_s * math.log(1.0 - frac)

    def max_sustainable_power_w(self) -> float:
        """Largest constant power that never destabilises the board —
        what a proper thermal package (Section 6.1's fix) must beat."""
        return (self.t_unstable - self.t_ambient) / self.r_c_per_w


class PCIeFaultInjector:
    """The unstable Tegra PCIe root complex, as a fault injector.

    :param p_boot_failure: probability the interface fails to enumerate
        at boot ("sometimes the PCIe interface failed to initialize").
    :param mtbf_hours_under_load: mean time between hangs under heavy
        traffic ("sometimes it stopped responding when used under heavy
        workloads"; post-mortem analysis was impossible — the node just
        dies).
    :param seed: RNG seed (deterministic injection for tests).
    """

    def __init__(
        self,
        p_boot_failure: float = 0.02,
        mtbf_hours_under_load: float = 200.0,
        seed: int = 0,
    ) -> None:
        if not (0.0 <= p_boot_failure < 1.0):
            raise ValueError("boot failure probability must be in [0, 1)")
        if mtbf_hours_under_load <= 0:
            raise ValueError("MTBF must be positive")
        self.p_boot_failure = p_boot_failure
        self.mtbf_hours_under_load = mtbf_hours_under_load
        # Independent streams per fault class: drawing boot outcomes
        # must never perturb the hang times (and vice versa), so that
        # enabling one injection site cannot silently reshuffle the
        # faults another test depends on.
        boot_ss, hang_ss = np.random.SeedSequence(seed).spawn(2)
        self._boot_rng = np.random.default_rng(boot_ss)
        self._hang_rng = np.random.default_rng(hang_ss)

    def boot_nodes(self, n_nodes: int) -> np.ndarray:
        """Boolean array: which of ``n_nodes`` came up with working PCIe."""
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        healthy = self._boot_rng.random(n_nodes) >= self.p_boot_failure
        rec = _obs_current()
        if rec is not None:
            rec.bump("cluster.boot_attempts", n_nodes)
            for i in np.flatnonzero(~healthy):
                rec.instant("pcie.boot_failure", "cluster", 0.0, node=int(i))
        return healthy

    def hang_times_s(self, n_nodes: int) -> np.ndarray:
        """Exponential time-to-hang (seconds) per node under load."""
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        times = self._hang_rng.exponential(
            self.mtbf_hours_under_load * 3600.0, n_nodes
        )
        rec = _obs_current()
        if rec is not None:
            for i, t in enumerate(times):
                rec.instant("pcie.hang", "cluster", float(t), node=i)
        return times

    def job_survives(self, n_nodes: int, job_hours: float) -> bool:
        """Whether a job of ``job_hours`` on ``n_nodes`` sees no hang."""
        if job_hours <= 0:
            raise ValueError("job duration must be positive")
        return bool(
            (self.hang_times_s(n_nodes) > job_hours * 3600.0).all()
        )

    def expected_job_survival(self, n_nodes: int, job_hours: float) -> float:
        """Analytic survival probability (no RNG)."""
        rate = n_nodes * job_hours / self.mtbf_hours_under_load
        return math.exp(-rate)
