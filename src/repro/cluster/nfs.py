"""NFS root-filesystem model.

Every Tibidabo node mounts its root filesystem over NFS (Section 5).
Section 6.2: "the low 100 Mbit Ethernet bandwidth was not enough to
support the NFS traffic in the I/O phases of the applications, resulting
in timeouts, performance degradation and even application crashes.  This
required application changes to serialize the parallel I/O ... and in
some cases this limited the maximum number of nodes."

The model: one NFS server behind a ``server_link``; ``n`` clients each
moving ``bytes_per_client`` through their ``client_link`` concurrently.
Per-client throughput is the fair share of the server link capped by the
client link; an I/O phase whose duration exceeds the RPC timeout
(retrans x timeo) is flagged, and serialising the I/O is offered as the
mitigation the paper applied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import FAST_ETHERNET, GBE, Link


@dataclass(frozen=True)
class NFSModel:
    """NFS server/client throughput and timeout model.

    :param server_link: the server's network attachment.
    :param client_link: each node's NFS-facing link (100 Mbit on the
        boards that route NFS over their slow interface).
    :param rpc_timeout_s: effective NFS RPC deadline (timeo x retrans).
    :param server_efficiency: fraction of link bandwidth NFS sustains
        (protocol + disk overheads).
    """

    server_link: Link = GBE
    client_link: Link = FAST_ETHERNET
    rpc_timeout_s: float = 60.0
    server_efficiency: float = 0.80

    def __post_init__(self) -> None:
        if self.rpc_timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if not (0.0 < self.server_efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")

    def per_client_mbs(self, n_clients: int) -> float:
        """Fair-share throughput per client, MB/s."""
        if n_clients <= 0:
            raise ValueError("need at least one client")
        server_share = (
            self.server_link.payload_bandwidth_mbs
            * self.server_efficiency
            / n_clients
        )
        return min(server_share, self.client_link.payload_bandwidth_mbs)

    def parallel_phase_time_s(
        self, n_clients: int, bytes_per_client: float
    ) -> float:
        """Duration of a fully parallel I/O phase."""
        if bytes_per_client < 0:
            raise ValueError("bytes must be non-negative")
        bw = self.per_client_mbs(n_clients) * 1e6  # B/s
        return bytes_per_client / bw

    def serialized_phase_time_s(
        self, n_clients: int, bytes_per_client: float
    ) -> float:
        """Duration when clients take turns (the paper's mitigation)."""
        bw = self.per_client_mbs(1) * 1e6
        return n_clients * bytes_per_client / bw

    def times_out(self, n_clients: int, bytes_per_client: float) -> bool:
        """Whether a parallel phase would trip the RPC deadline — the
        Section 6.2 failure mode."""
        return (
            self.parallel_phase_time_s(n_clients, bytes_per_client)
            > self.rpc_timeout_s
        )

    def max_parallel_clients(self, bytes_per_client: float) -> int:
        """Largest client count that stays under the deadline — the
        "limited the maximum number of nodes" effect."""
        if bytes_per_client <= 0:
            return 1 << 30  # unbounded for empty phases
        if self.times_out(1, bytes_per_client):
            return 0
        # Once the server link is the bottleneck, phase time grows
        # linearly with n: t(n) = n * bytes / server_bw.
        server_bw = (
            self.server_link.payload_bandwidth_mbs
            * self.server_efficiency
            * 1e6
        )
        n_max = int(self.rpc_timeout_s * server_bw / bytes_per_client)
        return max(1, n_max)
