"""Cluster assembly and its MPI-facing network model.

:func:`tibidabo` builds the paper's prototype: up to 192 Tegra 2 nodes
at 1 GHz, one MPI rank per node (each rank using both cores), a
two-level 48-port 1 GbE tree (8 Gb/s bisection, three hops max), and a
choice of TCP/IP or Open-MX messaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arch.catalog import get_platform, tegra2
from repro.arch.soc import Platform
from repro.cluster.node import ClusterNode
from repro.mpi.api import MPIWorld
from repro.net.link import GBE, Link
from repro.net.nic import attachment_for
from repro.net.protocol import OPEN_MX, TCP_IP, Protocol, ProtocolStack
from repro.net.topology import TreeTopology
from repro.obs.recorder import current as _obs_current


class ClusterNetwork:
    """Network model handed to :class:`~repro.mpi.api.MPIWorld`.

    Per-message time = protocol-stack time (software + NIC + wire) plus
    switch traversals along the tree path.  An optional contention
    factor models oversubscribed core uplinks under all-to-all pressure.
    """

    def __init__(
        self,
        nodes: list[ClusterNode],
        topology: TreeTopology,
        protocol: Protocol = TCP_IP,
        link: Link = GBE,
        contention_factor: float = 1.0,
    ) -> None:
        if contention_factor < 1.0:
            raise ValueError("contention factor is a multiplier >= 1")
        self.nodes = nodes
        self.topology = topology
        self.protocol = protocol
        self.link = link
        self.contention_factor = contention_factor
        # Deduplicate stacks: a homogeneous cluster's nodes all share one
        # (core, frequency, NIC) operating point, so one ProtocolStack —
        # and its per-size latency/occupancy memo tables — serves every
        # node.  The stack model is immutable apart from those memos, so
        # sharing an instance cannot leak state between nodes.
        unique: dict[tuple, tuple[int, ProtocolStack]] = {}
        self._stacks: list[ProtocolStack] = []
        self._stack_id: list[int] = []  # per-node index into the unique set
        for node in nodes:
            key = (node.platform.soc.core.name, node.freq_ghz, node.nic)
            entry = unique.get(key)
            if entry is None:
                entry = unique[key] = (
                    len(unique),
                    ProtocolStack(
                        protocol,
                        node.nic,
                        link=link,
                        core_name=node.platform.soc.core.name,
                        freq_ghz=node.freq_ghz,
                    ),
                )
            self._stacks.append(entry[1])
            self._stack_id.append(entry[0])
        # (stack id, hops, nbytes) -> transfer seconds, untraced path only
        # (tracing must keep bumping the per-message net.* counters).
        self._xfer_memo: dict[tuple[int, int, int], float] = {}
        # Per-node leaf-switch index, so the hot path resolves hop count
        # with two list lookups instead of two method calls.
        ports = topology.leaf.ports
        self._leaf = [n // ports for n in range(len(nodes))]

    def stack_of(self, node: int) -> ProtocolStack:
        return self._stacks[node]

    def _transfer_uncached(self, src: int, dst: int, nbytes: int) -> float:
        t = self._stacks[src].transfer_time_s(nbytes)
        t += self.topology.path_latency_us(src, dst, nbytes) * 1e-6
        if self.topology.crosses_core(src, dst):
            # Oversubscribed uplinks slow the per-byte part only.
            per_byte_s = nbytes * self._stacks[src].ns_per_byte(nbytes) * 1e-9
            t += per_byte_s * (self.contention_factor - 1.0)
        return t

    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 1e-7
        if _obs_current() is not None:
            # Recording: every message must bump the wire counters.
            return self._transfer_uncached(src, dst, nbytes)
        # Untraced: the time is a pure function of (stack, hop count,
        # size) — hops determine both the switch latency and whether the
        # path crosses the contended core uplinks.
        leaf = self._leaf
        hops = 1 if leaf[src] == leaf[dst] else 3
        key = (self._stack_id[src], hops, nbytes)
        cached = self._xfer_memo.get(key)
        if cached is None:
            cached = self._xfer_memo[key] = self._transfer_uncached(
                src, dst, nbytes
            )
        return cached

    def sender_occupancy_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 0.0
        return self._stacks[src].cpu_occupancy_s(nbytes)


@dataclass
class Cluster:
    """A homogeneous cluster of SoC nodes."""

    name: str
    nodes: list[ClusterNode]
    topology: TreeTopology
    protocol: Protocol = TCP_IP
    link: Link = GBE

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        if self.topology.n_nodes < len(self.nodes):
            raise ValueError("topology smaller than node count")

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def network(self, contention_factor: float = 1.0) -> ClusterNetwork:
        return ClusterNetwork(
            self.nodes,
            self.topology,
            protocol=self.protocol,
            link=self.link,
            contention_factor=contention_factor,
        )

    def peak_gflops(self) -> float:
        """Aggregate peak FP64 of all nodes."""
        return sum(node.peak_gflops() for node in self.nodes)

    def make_world(
        self,
        n_ranks: int | None = None,
        workload: str = "dgemm",
        contention_factor: float = 1.0,
    ) -> MPIWorld:
        """An :class:`MPIWorld` with one rank per node (default)."""
        n = self.n_nodes if n_ranks is None else n_ranks
        if not (1 <= n <= self.n_nodes):
            raise ValueError(
                f"n_ranks must be in [1, {self.n_nodes}]"
            )
        gflops = [node.achieved_gflops(workload) for node in self.nodes]
        return MPIWorld(
            n,
            self.network(contention_factor),
            rank_gflops=lambda r: gflops[r],
        )

    def without_nodes(self, dead: "set[int] | list[int]") -> "Cluster":
        """The cluster rebuilt from the survivors of ``dead`` (by
        node_id) — the shrink-and-rerun path after a mid-job crash,
        mirroring what :func:`degraded_tibidabo` does at boot time.
        Survivors are re-indexed contiguously (MPI ranks are dense)."""
        import dataclasses

        dead_set = set(dead)
        survivors = [n for n in self.nodes if n.node_id not in dead_set]
        if not survivors:
            raise RuntimeError("no node survived")
        renumbered = [
            dataclasses.replace(node, node_id=i)
            for i, node in enumerate(survivors)
        ]
        return Cluster(
            name=f"{self.name}-{len(dead_set)}",
            nodes=renumbered,
            topology=TreeTopology(len(renumbered), self.topology.leaf),
            protocol=self.protocol,
            link=self.link,
        )

    def subcluster(self, n_nodes: int) -> "Cluster":
        """The first ``n_nodes`` nodes (used by the scalability sweeps)."""
        if not (1 <= n_nodes <= self.n_nodes):
            raise ValueError("n_nodes out of range")
        return Cluster(
            name=f"{self.name}[{n_nodes}]",
            nodes=self.nodes[:n_nodes],
            topology=TreeTopology(n_nodes, self.topology.leaf),
            protocol=self.protocol,
            link=self.link,
        )


def build_cluster(
    name: str,
    n_nodes: int,
    platform: Platform | str = "Tegra2",
    freq_ghz: float | None = None,
    protocol: Protocol = TCP_IP,
    link: Link = GBE,
    ranks_per_node: int = 1,
) -> Cluster:
    """Generic homogeneous cluster builder."""
    plat = (
        get_platform(platform) if isinstance(platform, str) else platform
    )
    f = plat.soc.max_freq_ghz if freq_ghz is None else freq_ghz
    nodes = [
        ClusterNode(i, plat, f, ranks_per_node=ranks_per_node)
        for i in range(n_nodes)
    ]
    return Cluster(
        name=name,
        nodes=nodes,
        topology=TreeTopology(n_nodes),
        protocol=protocol,
        link=link,
    )


def tibidabo(
    n_nodes: int = 192,
    protocol: Protocol = TCP_IP,
    open_mx: bool = False,
) -> Cluster:
    """The Tibidabo prototype (Section 4): ``n_nodes`` Tegra 2 / SECO Q7
    nodes at 1 GHz on a 48-port 1 GbE tree."""
    if not (1 <= n_nodes <= 192):
        raise ValueError("Tibidabo had at most 192 nodes")
    return build_cluster(
        name="Tibidabo",
        n_nodes=n_nodes,
        platform=tegra2(),
        freq_ghz=1.0,
        protocol=OPEN_MX if open_mx else protocol,
    )


def degraded_tibidabo(
    n_nodes: int = 96,
    open_mx: bool = True,
    injector=None,
    seed: int = 0,
) -> tuple[Cluster, int]:
    """Tibidabo after a realistic bring-up: nodes whose PCIe failed to
    enumerate at boot (Section 6.1) are dropped, and the cluster is
    rebuilt from the survivors.

    Returns ``(cluster, n_lost)``.  The resilience benchmark runs HPL on
    the degraded machine to quantify what the flaky interface costs.
    """
    from repro.cluster.reliability import PCIeFaultInjector

    from repro.obs.recorder import current as _obs_current

    inj = injector or PCIeFaultInjector(seed=seed)
    healthy = inj.boot_nodes(n_nodes)
    survivors = int(healthy.sum())
    if survivors == 0:
        raise RuntimeError("no node survived boot")
    rec = _obs_current()
    if rec is not None:
        for i, ok in enumerate(healthy):
            rec.instant(
                "node.up" if ok else "node.down", "cluster", 0.0, node=i
            )
        rec.bump("cluster.nodes_lost", n_nodes - survivors)
    return tibidabo(survivors, open_mx=open_mx), n_nodes - survivors
