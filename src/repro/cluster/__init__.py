"""Cluster substrate: Tibidabo and friends.

Builds multi-node systems out of the platform models (:mod:`repro.arch`),
the interconnect models (:mod:`repro.net`) and the MPI simulator
(:mod:`repro.mpi`), plus the operational pieces the paper discusses:
whole-cluster power (for the Green500 figure), the NFS root filesystem
whose 100 Mbit bottleneck caused application timeouts (Section 6.2), a
minimal SLURM-like scheduler (Section 5's software stack), and the
reliability models of Section 6 (DRAM errors without ECC, thermal
throttling of heatsink-less boards, flaky PCIe).
"""

from repro.cluster.node import ClusterNode
from repro.cluster.cluster import Cluster, ClusterNetwork, tibidabo
from repro.cluster.power import ClusterPowerModel
from repro.cluster.nfs import NFSModel
from repro.cluster.slurm import Job, SlurmScheduler
from repro.cluster.reliability import (
    DramErrorModel,
    PCIeFaultInjector,
    ThermalModel,
)

__all__ = [
    "ClusterNode",
    "Cluster",
    "ClusterNetwork",
    "tibidabo",
    "ClusterPowerModel",
    "NFSModel",
    "Job",
    "SlurmScheduler",
    "DramErrorModel",
    "PCIeFaultInjector",
    "ThermalModel",
]
