"""Performance-regression harness.

Microbenchmarks for the three hot layers of the simulator — the event
engine, the MPI point-to-point path, and the end-to-end application
studies — plus the machinery to persist results as ``BENCH_*.json``
documents and compare them against a committed baseline with a
tolerance (the CI perf gate).

Entry points:

* ``python -m repro bench`` — run the suites, write ``BENCH_engine.json``
  / ``BENCH_mpi.json`` / ``BENCH_apps.json``.
* :func:`repro.perf.compare.check_against_baseline` — the regression
  gate used by CI and by ``bench --check``.

See DESIGN.md §9 for methodology (best-of-N timing, machine-specific
baselines, seed-reference speedups).
"""

from repro.perf.bench import BenchResult, run_bench, suite_doc, validate_bench_doc
from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    Comparison,
    check_against_baseline,
    compare_to_baseline,
)

__all__ = [
    "BenchResult",
    "run_bench",
    "suite_doc",
    "validate_bench_doc",
    "DEFAULT_TOLERANCE",
    "Comparison",
    "compare_to_baseline",
    "check_against_baseline",
]
