"""``python -m repro bench`` — run the perf suites, write BENCH_*.json.

Usage::

    python -m repro bench                      # all suites -> ./BENCH_*.json
    python -m repro bench engine mpi           # a subset
    python -m repro bench --quick              # CI smoke sizes
    python -m repro bench --check              # fail on >tolerance regression
    python -m repro bench --update-baseline    # re-record the committed baseline
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli import jobs_count
from repro.perf.bench import suite_doc, validate_bench_doc
from repro.perf.compare import (
    BASELINE_PATH,
    check_against_baseline,
    load_baseline,
    results_by_name,
)
from repro.perf.suites import (
    SEED_OPS_PER_S,
    SHARDABLE_SUITES,
    SUITES,
    bench_pool_entry,
    campaign_suite_with_ref,
    engine_suite_with_seed,
    serve_suite_with_ref,
    suite_unit_names,
)


def _run_suite_sharded(
    name: str, repeats: int, quick: bool, jobs: int
) -> tuple[list, dict[str, float] | None]:
    """Fan one suite's (suite, benchmark) work units across a pool;
    results merge in the suite's canonical benchmark order."""
    import multiprocessing

    unit_names = suite_unit_names(name, repeats, quick)
    jobs_args = [(name, bench, repeats, quick) for bench in unit_names]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(min(jobs, len(jobs_args))) as pool:
        pairs = pool.map(bench_pool_entry, jobs_args, chunksize=1)
    results = [result for result, _ in pairs]
    live_ref = {
        r.name: seed_ops for (r, seed_ops) in pairs if seed_ops is not None
    }
    return results, (live_ref or SEED_OPS_PER_S.get(name))


def bench_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the simulator performance suites.",
    )
    parser.add_argument(
        "suites",
        nargs="*",
        choices=[[], *SUITES],  # empty selection = all
        default=[],
        help="suites to run (default: all of %s)" % ", ".join(SUITES),
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path("."),
        help="directory for BENCH_<suite>.json files (default: cwd)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per benchmark, best kept (default: 5)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes/repeats for CI smoke runs",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file for --check/--update-baseline (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional slowdown before --check fails "
        "(default: the baseline's own default_tolerance, else 0.20)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline's ops/s entries from this run",
    )
    parser.add_argument(
        "--jobs", type=jobs_count, default=1,
        help="shard each suite's benchmarks across N worker processes "
        "(default: 1, the serial path)",
    )
    args = parser.parse_args(argv)
    selected = list(dict.fromkeys(args.suites)) or list(SUITES)
    repeats = 1 if args.quick else args.repeats

    args.out_dir.mkdir(parents=True, exist_ok=True)
    docs = []
    for name in selected:
        if name == "campaign":
            # Whole-campaign runs that drive their own worker pools;
            # never sharded from here.
            results, seed_ref = campaign_suite_with_ref(repeats, args.quick)
        elif name == "serve":
            # End-to-end service runs; same own-pool rule as campaign.
            results, seed_ref = serve_suite_with_ref(repeats, args.quick)
        elif args.jobs > 1 and name in SHARDABLE_SUITES:
            results, seed_ref = _run_suite_sharded(
                name, repeats, args.quick, args.jobs
            )
        elif name == "engine":
            # The engine suite times the frozen seed scheduler live,
            # back-to-back with the current one, so its speedups are a
            # controlled same-machine comparison.
            results, seed_ref = engine_suite_with_seed(repeats, args.quick)
        else:
            results = SUITES[name](repeats, args.quick)
            seed_ref = SEED_OPS_PER_S.get(name)
        doc = suite_doc(name, results, seed_ref)
        validate_bench_doc(doc)
        out = args.out_dir / f"BENCH_{name}.json"
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        docs.append(doc)
        print(f"{out}:")
        for rec in doc["benchmarks"]:
            line = (
                f"  {rec['name']:28s} {rec['ops_per_s']:14,.1f} ops/s  "
                f"wall {rec['wall_s']:.4f} s"
            )
            if "speedup_vs_seed" in rec:
                line += f"  {rec['speedup_vs_seed']:.2f}x vs seed"
            print(line)
        if "geomean_speedup_vs_seed" in doc:
            print(
                f"  geomean speedup vs seed: "
                f"{doc['geomean_speedup_vs_seed']:.2f}x"
            )

    current = results_by_name(docs)
    baseline_path = args.baseline if args.baseline is not None else BASELINE_PATH

    if args.update_baseline:
        try:
            base = load_baseline(baseline_path)
        except FileNotFoundError:
            base = {"schema_version": 1, "default_tolerance": 0.20, "benchmarks": {}}
        base["benchmarks"].update(current)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(base, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {baseline_path}")

    if args.check:
        baseline = dict(load_baseline(baseline_path))
        # Gate only the suites that ran: a benchmark absent because its
        # suite was not selected is not a regression (one missing from
        # a suite that DID run still fails).
        baseline["benchmarks"] = {
            k: v
            for k, v in baseline["benchmarks"].items()
            if k.split(".", 1)[0] in selected
        }
        ok, lines = check_against_baseline(
            current, baseline, tolerance=args.tolerance
        )
        print("\n".join(lines))
        return 0 if ok else 1
    return 0
