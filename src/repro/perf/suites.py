"""The benchmark suites: engine, MPI point-to-point, applications.

Every benchmark is deliberately *pure simulator* — no I/O, no
randomness outside the models' own seeded draws — so ops/s measures the
scheduler and cost-model hot paths and nothing else.

The engine suite reports ``speedup_vs_seed`` figures measured *live*
against the frozen seed scheduler (``benchmarks/perf/seed_engine.py``),
back-to-back on the machine at hand — a controlled comparison that is
immune to host speed and load.  :data:`SEED_OPS_PER_S` is only the
fallback denominator when that reference copy is not on disk; the MPI
and apps suites make no speedup claim (their gains ride on the same
scheduler) and are tracked purely by the baseline regression gate.
"""

from __future__ import annotations

from typing import Callable

from repro.perf.bench import BenchResult, run_bench

#: ops/s of the seed (pre-optimisation) code on the reference machine.
#: Measured with the identical suite bodies by checking out the PR-2
#: engine/study and running ``python -m repro bench`` — see DESIGN.md §9
#: for the protocol.
SEED_OPS_PER_S: dict[str, dict[str, float]] = {
    # Measured on the reference machine with both engines loaded in ONE
    # process, alternating old/new for 7 rounds and keeping each
    # benchmark's best round (the protocol engine_suite_with_seed
    # automates; this table is its offline fallback).
    "engine": {
        "engine.timer_cascade": 329_750.0,
        "engine.event_chain": 73_000.0,
        "engine.timeouts": 118_590.0,
    },
    # The quick serial campaign as committed at the seed of the
    # vectorized-sweep work (pre-optimisation BENCH_campaign.json on the
    # reference machine): 7.8639 s wall.  The serial entry's
    # speedup_vs_seed — and the >=5x acceptance gate encoded in
    # benchmarks/perf/baseline.json — are measured against this figure.
    "campaign": {
        "campaign.quick_serial": 0.12716406203267594,
    },
}


# ---------------------------------------------------------------------------
# Engine microbenchmarks
# ---------------------------------------------------------------------------
# Each body takes the Engine class so the same code can time the live
# scheduler and the frozen seed copy (benchmarks/perf/seed_engine.py).

def _bench_timer_cascade(engine_cls: type, n_procs: int, steps: int) -> int:
    """The dominant simulator shape: many processes, each repeatedly
    yielding a timeout (compute/communicate loops)."""
    eng = engine_cls()

    def worker(i: int):
        timeout = eng.timeout
        for s in range(steps):
            yield timeout(0.001 * ((i + s) % 7 + 1))

    for i in range(n_procs):
        eng.process(worker(i))
    eng.run()
    return n_procs * steps


def _bench_event_chain(engine_cls: type, n: int) -> int:
    """A chain of processes each woken by its predecessor's event —
    stresses succeed/waiter dispatch rather than the timer heap."""
    eng = engine_cls()
    evs = [eng.event() for _ in range(n + 1)]

    def pinger(i: int):
        yield evs[i]
        evs[i + 1].succeed(i)

    for i in range(n):
        eng.process(pinger(i))

    def kick():
        yield eng.timeout(0.0)
        evs[0].succeed(-1)

    eng.process(kick())
    eng.run()
    return n


def _bench_timeouts(engine_cls: type, n: int) -> int:
    """Bare timer churn: heap push/pop and the inlined-succeed fast
    path, no generator in the loop."""
    eng = engine_cls()
    timeout = eng.timeout
    for i in range(n):
        timeout(0.0001 * (i % 13))
    eng.run()
    return n


def _engine_bodies(quick: bool) -> list[tuple[str, Callable[[type], int]]]:
    scale = 4 if quick else 1
    return [
        (
            "engine.timer_cascade",
            lambda cls: _bench_timer_cascade(cls, 400 // scale, 100),
        ),
        (
            "engine.event_chain",
            lambda cls: _bench_event_chain(cls, 50_000 // scale),
        ),
        (
            "engine.timeouts",
            lambda cls: _bench_timeouts(cls, 200_000 // scale),
        ),
    ]


def engine_suite(repeats: int = 3, quick: bool = False) -> list[BenchResult]:
    from repro.sim.engine import Engine

    return [
        run_bench(name, lambda: body(Engine), repeats)
        for name, body in _engine_bodies(quick)
    ]


def load_seed_engine_cls() -> type | None:
    """The frozen seed scheduler's Engine class, or ``None`` when the
    reference copy is not on disk (installed package, no checkout)."""
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parents[3]
        / "benchmarks" / "perf" / "seed_engine.py"
    )
    if not path.is_file():
        return None
    spec = importlib.util.spec_from_file_location("repro_perf_seed_engine", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.Engine


def engine_suite_with_seed(
    repeats: int = 3, quick: bool = False
) -> tuple[list[BenchResult], dict[str, float]]:
    """Time each engine benchmark against the live scheduler AND the
    frozen seed scheduler, back-to-back per benchmark.

    Adjacent measurement keeps the two numbers under the same machine
    conditions, so ``speedup_vs_seed`` is a controlled comparison even
    on a loaded or throttling host.  Falls back to the recorded
    :data:`SEED_OPS_PER_S` when the reference copy is unavailable.
    """
    from repro.sim.engine import Engine

    seed_cls = load_seed_engine_cls()
    if seed_cls is None:
        return engine_suite(repeats, quick), dict(SEED_OPS_PER_S["engine"])
    results: list[BenchResult] = []
    seed_ref: dict[str, float] = {}
    for name, body in _engine_bodies(quick):
        new = run_bench(name, lambda: body(Engine), repeats)
        old = run_bench(name, lambda: body(seed_cls), repeats)
        results.append(new)
        seed_ref[name] = old.ops_per_s
    return results, seed_ref


# ---------------------------------------------------------------------------
# MPI microbenchmarks
# ---------------------------------------------------------------------------

def _pingpong(iters: int, nbytes: int) -> int:
    from repro.mpi.api import MPIWorld, SyntheticPayload, UniformNetwork
    from repro.net.protocol import TCP_IP, ProtocolStack

    stack = ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)
    world = MPIWorld(2, UniformNetwork(stack))
    payload = SyntheticPayload(nbytes)

    def rank_fn(ctx):
        peer = 1 - ctx.rank
        for _ in range(iters):
            if ctx.rank == 0:
                yield from ctx.send(peer, payload)
                yield from ctx.recv(peer)
            else:
                yield from ctx.recv(peer)
                yield from ctx.send(peer, payload)

    world.run(rank_fn)
    return 2 * iters  # messages delivered


def _mpi_bodies(quick: bool) -> list[tuple[str, Callable[[], int]]]:
    iters = 1_000 if quick else 5_000
    return [
        ("mpi.pingpong_small", lambda: _pingpong(iters, 1024)),
        # 256 KiB crosses Open-MX's rendezvous threshold on stacks that
        # have one; on TCP/IP it simply exercises the per-byte path.
        ("mpi.pingpong_rendezvous", lambda: _pingpong(iters // 2, 256 * 1024)),
    ]


def mpi_suite(repeats: int = 3, quick: bool = False) -> list[BenchResult]:
    return [
        run_bench(name, body, repeats) for name, body in _mpi_bodies(quick)
    ]


# ---------------------------------------------------------------------------
# Application benchmarks
# ---------------------------------------------------------------------------

def _hpl96() -> int:
    from repro.core.study import MobileSoCStudy

    MobileSoCStudy().headline_hpl(96)
    return 1  # one full-study run


def _fig3_sweep() -> int:
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    study.figure3()
    study.figure4()
    return 1


def _apps_bodies(
    repeats: int, quick: bool
) -> list[tuple[str, Callable[[], int], int, bool]]:
    """(name, body, repeats, warmup) rows for the apps suite.

    The HPL run dominates; a fresh study per call keeps the executor
    memo cold across repeats (what a user's first run experiences).
    The sweep bench is cheap, so it keeps real repeats even in quick
    mode — best-of-1 wall clock is not comparable to best-of-N.
    """
    hpl_reps = 1 if quick else max(1, repeats - 1)
    return [
        ("apps.hpl96_headline", _hpl96, hpl_reps, False),
        ("apps.fig3_sweep", _fig3_sweep, max(repeats, 3), True),
    ]


def apps_suite(repeats: int = 3, quick: bool = False) -> list[BenchResult]:
    return [
        run_bench(name, body, reps, warmup)
        for name, body, reps, warmup in _apps_bodies(repeats, quick)
    ]


# ---------------------------------------------------------------------------
# Campaign end-to-end benchmarks (BENCH_campaign.json)
# ---------------------------------------------------------------------------

def campaign_suite_with_ref(
    repeats: int = 1, quick: bool = False
) -> tuple[list[BenchResult], dict[str, float]]:
    """Serial vs sharded vs warm-cache quick campaign, back-to-back.

    Three end-to-end runs of the Figures 3/4/6 + headline campaign at
    quick scale: today's serial path, the sharded runner on a *cold*
    cache (pool parallelism only), and the same runner again on the
    cache the cold run just filled.  The serial entry carries
    ``speedup_vs_seed`` against the recorded seed serial run
    (:data:`SEED_OPS_PER_S`, the pre-vectorization wall clock — the
    >=5x acceptance gate's numerator); each sharded entry carries it
    against *this* run's serial wall clock (the sharding gain).
    ``repeats`` is ignored: these are whole-campaign runs, best-of-1 by
    construction.
    """
    import tempfile

    from repro.core.study import MobileSoCStudy
    from repro.parallel.runner import run_campaign

    jobs = 4

    def _serial() -> int:
        MobileSoCStudy().run_all(quick=True)
        return 1

    serial = run_bench("campaign.quick_serial", _serial, 1, warmup=False)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:

        def _sharded() -> int:
            run_campaign(quick=True, jobs=jobs, cache_dir=td)
            return 1

        cold = run_bench("campaign.quick_jobs4", _sharded, 1, warmup=False)
        warm = run_bench(
            "campaign.quick_warm_cache", _sharded, 1, warmup=False
        )
    ref = serial.ops_per_s
    return [serial, cold, warm], {
        "campaign.quick_serial": SEED_OPS_PER_S["campaign"][
            "campaign.quick_serial"
        ],
        "campaign.quick_jobs4": ref,
        "campaign.quick_warm_cache": ref,
    }


def campaign_suite(repeats: int = 1, quick: bool = False) -> list[BenchResult]:
    return campaign_suite_with_ref(repeats, quick)[0]


# ---------------------------------------------------------------------------
# Serving end-to-end benchmarks (BENCH_serve.json)
# ---------------------------------------------------------------------------

def serve_suite_with_ref(
    repeats: int = 1, quick: bool = False
) -> tuple[list[BenchResult], dict[str, float]]:
    """Serving end to end: open-loop cold/warm, saturation, scaling.

    Boots the JSON-lines TCP server in-process (real work units, real
    result cache, real pre-forked pool) and drives it with the seeded
    open-loop generator twice back-to-back: once against a *cold* cache
    (misses dominate: micro-batching + sharded execution) and once
    against the cache the cold pass just filled (coalesce + cache hits
    dominate).  Each record's ops are completed requests, ops/s is
    delivered throughput, and the extras carry the tail latencies and
    hit ratio — the numbers the acceptance gate reads off
    BENCH_serve.json.  The warm entry's ``speedup_vs_seed`` is measured
    against the cold pass, mirroring the campaign suite's serial-vs-
    sharded idiom.

    The open-loop entries *cannot* measure capacity — whenever the
    server keeps up they report ~offered rate, cold and warm alike
    (the pre-fix BENCH_serve showed ~1000 ops/s for both passes while
    the warm p99 was 0.22 ms).  ``serve.saturation`` closes the loop:
    :func:`~repro.serve.loadtest.run_saturation` ramps the offered
    rate against the warm server until the tail degrades, and its
    ``ops_per_s`` IS ``max_sustainable_ops_per_s``.

    ``serve.cluster{1,2,4}`` run the same saturation probe through the
    shipped ``repro cluster-serve`` CLI (router + N backend
    subprocesses, cache peer-fill on), recording per-backend hit
    ratios, peer fills and ``scaling_vs_1``.  The proxied scaling
    factor is recorded honestly, not gated: the single-process router
    is itself on the data path, so ``scaling_vs_1`` sits near 1.0 by
    construction.  ``serve.cluster4_direct`` is the entry that *is*
    gated: the same 4-backend cluster probed over the redirect
    protocol's direct data path (``run_saturation(direct=True)`` —
    ring-aware clients, router off the query path), whose
    ``scaling_vs_1`` against the 1-backend proxied ceiling must clear
    the 1.5x floor baked into benchmarks/perf/baseline.json.
    ``repeats`` is ignored throughout: whole-service runs, best-of-1
    by construction.
    """
    import asyncio
    import tempfile

    from repro.perf.bench import peak_rss_bytes
    from repro.serve.frontend import CampaignFrontEnd, ServeConfig
    from repro.serve.loadtest import run_loadtest_fleet, run_saturation
    from repro.serve.server import ServeServer

    n_requests = 400 if quick else 1500
    rate = 800.0 if quick else 1000.0
    # The hot-value LRU lifted the single-process ceiling past the old
    # quick ramp's top step (8 k offered): 7 quick steps reach 32 k so
    # neither wire's ceiling is clipped by ramp exhaustion.
    sat_kw = dict(
        seed=0,
        connections=2 if quick else 4,
        start_rate=500.0,
        growth=2.0,
        step_seconds=0.25 if quick else 0.5,
        max_steps=7 if quick else 9,
    )

    async def _drive(cache_dir) -> tuple[dict, dict, dict, dict]:
        server = ServeServer(
            CampaignFrontEnd(ServeConfig(jobs=2, cache_dir=cache_dir))
        )
        await server.start()
        run_task = asyncio.ensure_future(server.serve_until_shutdown())
        cold = await run_loadtest_fleet(
            "127.0.0.1", server.port, n_requests=n_requests, rate=rate,
            seed=0, connections=2,
        )
        warm = await run_loadtest_fleet(
            "127.0.0.1", server.port, n_requests=n_requests, rate=rate,
            seed=0, connections=2,
        )
        saturation = await run_saturation(
            "127.0.0.1", server.port, **sat_kw
        )
        # Same warm server, same ramp, binary1 framing: the pair is the
        # controlled comparison the serve.saturation_binary gate reads.
        saturation_bin = await run_saturation(
            "127.0.0.1", server.port, wire="binary", **sat_kw
        )
        server.request_shutdown()
        await run_task
        return cold, warm, saturation, saturation_bin

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as td:
        cold, warm, saturation, saturation_bin = asyncio.run(_drive(td))

    def result(name: str, report: dict) -> BenchResult:
        extras = {"hit_ratio": report["hit_ratio"]}
        for key in ("p50_latency_s", "p99_latency_s"):
            if key in report:
                extras[key] = report[key]
        return BenchResult(
            name=name,
            ops=report["completed"],
            wall_s=report["wall_s"],
            ops_per_s=report["throughput_rps"],
            repeats=1,
            peak_rss_bytes=peak_rss_bytes(),
            extras=extras,
        )

    sat_completed = sum(s["completed"] for s in saturation["steps"])
    results = [
        result("serve.loadtest_cold", cold),
        result("serve.loadtest_warm", warm),
        BenchResult(
            name="serve.saturation",
            ops=sat_completed,
            wall_s=(
                sat_completed / saturation["max_sustainable_ops_per_s"]
                if saturation["max_sustainable_ops_per_s"] else 0.0
            ),
            ops_per_s=saturation["max_sustainable_ops_per_s"],
            repeats=1,
            peak_rss_bytes=peak_rss_bytes(),
            extras={
                "saturated": saturation["saturated"],
                "steps": len(saturation["steps"]),
                "sustained_p99_s": saturation["sustained_p99_s"],
            },
        ),
    ]
    sat_bin_completed = sum(s["completed"] for s in saturation_bin["steps"])
    results.append(BenchResult(
        name="serve.saturation_binary",
        ops=sat_bin_completed,
        wall_s=(
            sat_bin_completed / saturation_bin["max_sustainable_ops_per_s"]
            if saturation_bin["max_sustainable_ops_per_s"] else 0.0
        ),
        ops_per_s=saturation_bin["max_sustainable_ops_per_s"],
        repeats=1,
        peak_rss_bytes=peak_rss_bytes(),
        extras={
            "saturated": saturation_bin["saturated"],
            "steps": len(saturation_bin["steps"]),
            "sustained_p99_s": saturation_bin["sustained_p99_s"],
            "wire": "binary1",
            "vs_json": (
                saturation_bin["max_sustainable_ops_per_s"]
                / saturation["max_sustainable_ops_per_s"]
                if saturation["max_sustainable_ops_per_s"] else 0.0
            ),
        },
    ))
    cluster_base: float | None = None
    for n_backends in (1, 2, 4):
        entry = _cluster_saturation_result(
            n_backends, quick, sat_kw, peak_rss_bytes
        )
        if cluster_base is None:
            cluster_base = entry.ops_per_s or 1.0
        entry.extras["scaling_vs_1"] = (
            entry.ops_per_s / cluster_base if cluster_base else 0.0
        )
        results.append(entry)
    direct_entry = _cluster_saturation_result(
        4, quick, sat_kw, peak_rss_bytes, direct=True
    )
    direct_entry.extras["scaling_vs_1"] = (
        direct_entry.ops_per_s / cluster_base if cluster_base else 0.0
    )
    results.append(direct_entry)
    direct_bin_entry = _cluster_saturation_result(
        4, quick, sat_kw, peak_rss_bytes, direct=True, wire="binary"
    )
    direct_bin_entry.extras["scaling_vs_1"] = (
        direct_bin_entry.ops_per_s / cluster_base if cluster_base else 0.0
    )
    results.append(direct_bin_entry)
    return results, {"serve.loadtest_warm": cold["throughput_rps"]}


def _cluster_saturation_result(
    n_backends: int, quick: bool, sat_kw: dict, peak_rss_bytes,
    direct: bool = False, wire: str = "json",
) -> BenchResult:
    """One ``serve.cluster<N>`` entry: boot the shipped
    ``repro cluster-serve`` CLI with N backends, warm the shards with
    open-loop passes through the router, find the data-path ceiling
    with the saturation probe, and read the per-backend hit economics
    off the router's aggregated ``stats`` op before draining.

    ``direct=True`` produces the ``serve.cluster<N>_direct`` variant:
    the warm-up still flows through the router (identical shard cache
    state either way), but the saturation probe runs ring-aware
    clients that route every query straight to its home shard — the
    redirect protocol's data path, whose ceiling is what the
    ``scaling_vs_1 >= 1.5`` baseline gate checks.  ``wire="binary"``
    additionally negotiates the binary1 framing on every shard link
    (the ``_binary`` entry names), probing the same path minus the
    JSON codec."""
    import asyncio
    import json as _json
    import re
    import subprocess
    import sys
    import tempfile

    from repro.serve.loadtest import run_loadtest_fleet, run_saturation

    async def _one_op(host: str, port: int, op: str) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((_json.dumps({"op": op, "id": 1}) + "\n").encode())
        await writer.drain()
        doc = _json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        return doc

    warm_requests = 400 if quick else 1200
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as td:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cluster-serve",
             "--backends", str(n_backends), "--port", "0", "--jobs", "1",
             "--cache-dir", td],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = None
            assert proc.stdout is not None
            while True:
                line = proc.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"cluster-serve ({n_backends} backends) died "
                        "before readiness"
                    )
                m = re.search(
                    r"cluster-serve: listening on [^:]+:(\d+)", line
                )
                if m:
                    port = int(m.group(1))
                    break

            async def _drive() -> tuple[dict, dict, dict]:
                # Warm every shard's cache via the router, then probe
                # the ceiling on the warm path.
                await run_loadtest_fleet(
                    "127.0.0.1", port, n_requests=warm_requests,
                    rate=800.0, seed=0, connections=2,
                )
                warm = await run_loadtest_fleet(
                    "127.0.0.1", port, n_requests=warm_requests,
                    rate=800.0, seed=0, connections=2,
                )
                saturation = await run_saturation(
                    "127.0.0.1", port, direct=direct, wire=wire, **sat_kw
                )
                stats = await _one_op("127.0.0.1", port, "stats")
                await _one_op("127.0.0.1", port, "shutdown")
                return warm, saturation, stats

            warm, saturation, stats = asyncio.run(_drive())
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    agg = stats.get("stats", {})
    completed = sum(s["completed"] for s in saturation["steps"])
    extras = {
        "backends": n_backends,
        "hit_ratio": warm["hit_ratio"],
        "aggregate_hit_ratio": agg.get("hit_ratio", 0.0),
        "per_backend_hit_ratio": agg.get("per_backend_hit_ratio", {}),
        "peer_fills": agg.get("peer_fills", 0),
        "saturated": saturation["saturated"],
    }
    if direct:
        extras["direct_queries"] = sum(
            s.get("direct_queries", 0) for s in saturation["steps"]
        )
        extras["router_fallbacks"] = sum(
            s.get("router_fallbacks", 0) for s in saturation["steps"]
        )
    if wire == "binary":
        extras["wire"] = "binary1"
    return BenchResult(
        name=f"serve.cluster{n_backends}"
        f"{'_direct' if direct else ''}"
        f"{'_binary' if wire == 'binary' else ''}",
        ops=completed,
        wall_s=(
            completed / saturation["max_sustainable_ops_per_s"]
            if saturation["max_sustainable_ops_per_s"] else 0.0
        ),
        ops_per_s=saturation["max_sustainable_ops_per_s"],
        repeats=1,
        peak_rss_bytes=peak_rss_bytes(),
        extras=extras,
    )


def serve_suite(repeats: int = 1, quick: bool = False) -> list[BenchResult]:
    return serve_suite_with_ref(repeats, quick)[0]


# ---------------------------------------------------------------------------
# Suite work units (``repro bench --jobs N``)
# ---------------------------------------------------------------------------
# Each (suite, benchmark) pair is an independent work unit so the bench
# CLI can fan a suite across a multiprocessing pool with deterministic
# merge order.  The campaign and serve suites are excluded: they own
# worker pools themselves.

SHARDABLE_SUITES = ("engine", "mpi", "apps")


def suite_unit_names(suite: str, repeats: int = 3, quick: bool = False) -> list[str]:
    """The benchmark names of one suite, in its canonical order."""
    if suite == "engine":
        return [name for name, _ in _engine_bodies(quick)]
    if suite == "mpi":
        return [name for name, _ in _mpi_bodies(quick)]
    if suite == "apps":
        return [name for name, _, _, _ in _apps_bodies(repeats, quick)]
    raise ValueError(f"suite {suite!r} has no work units")


def run_suite_unit(
    suite: str, name: str, repeats: int = 3, quick: bool = False
) -> tuple[BenchResult, float | None]:
    """Run one (suite, benchmark) work unit.

    Returns the result plus the live seed-scheduler reference ops/s for
    engine units (timed back-to-back in the same process, preserving
    the controlled comparison), ``None`` elsewhere.
    """
    if suite == "engine":
        from repro.sim.engine import Engine

        for bench_name, body in _engine_bodies(quick):
            if bench_name == name:
                result = run_bench(name, lambda: body(Engine), repeats)
                seed_cls = load_seed_engine_cls()
                if seed_cls is None:
                    return result, None
                old = run_bench(name, lambda: body(seed_cls), repeats)
                return result, old.ops_per_s
    elif suite == "mpi":
        for bench_name, body in _mpi_bodies(quick):
            if bench_name == name:
                return run_bench(name, body, repeats), None
    elif suite == "apps":
        for bench_name, body, reps, warmup in _apps_bodies(repeats, quick):
            if bench_name == name:
                return run_bench(name, body, reps, warmup), None
    else:
        raise ValueError(f"suite {suite!r} has no work units")
    raise ValueError(f"suite {suite!r} has no benchmark {name!r}")


def bench_pool_entry(
    job: tuple[str, str, int, bool]
) -> tuple[BenchResult, float | None]:
    """Top-level pool target for ``repro bench --jobs N``."""
    suite, name, repeats, quick = job
    return run_suite_unit(suite, name, repeats, quick)


SUITES: dict[str, Callable[[int, bool], list[BenchResult]]] = {
    "engine": engine_suite,
    "mpi": mpi_suite,
    "apps": apps_suite,
    "campaign": campaign_suite,
    "serve": serve_suite,
}
