"""Baseline comparison: the perf-regression gate.

The committed baseline (``benchmarks/perf/baseline.json``) records the
ops/s each benchmark achieved on the reference machine at the commit
that recorded it.  A run *regresses* when its ops/s falls more than
``tolerance`` (default 20%) below the baseline; improvements never
fail, they just mean the baseline should eventually be re-recorded.

Baselines are machine-specific: CI records and checks on one pinned
runner class, and ``python -m repro bench --update-baseline`` rewrites
the file from a local run when the hardware changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

DEFAULT_TOLERANCE = 0.20

#: Default location of the committed baseline, relative to the repo root
#: (resolved from this file so the CLI works from any cwd).
BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "baseline.json"
)


@dataclass(frozen=True)
class Comparison:
    """One benchmark measured against its baseline."""

    name: str
    baseline_ops_per_s: float
    current_ops_per_s: float | None  # None: in baseline, missing from run

    @property
    def ratio(self) -> float:
        """current / baseline (0.0 when the benchmark went missing)."""
        if self.current_ops_per_s is None:
            return 0.0
        return self.current_ops_per_s / self.baseline_ops_per_s

    def regressed(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        return self.ratio < 1.0 - tolerance

    def describe(self, tolerance: float = DEFAULT_TOLERANCE) -> str:
        if self.current_ops_per_s is None:
            return f"{self.name}: MISSING (baseline {self.baseline_ops_per_s:,.0f} ops/s)"
        verdict = "REGRESSED" if self.regressed(tolerance) else "ok"
        return (
            f"{self.name}: {self.current_ops_per_s:,.1f} ops/s vs baseline "
            f"{self.baseline_ops_per_s:,.1f} ({self.ratio:.2f}x) {verdict}"
        )


def load_baseline(path: Path | None = None) -> dict[str, Any]:
    p = Path(path) if path is not None else BASELINE_PATH
    try:
        doc = json.loads(p.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no perf baseline at {p}; record one with "
            "'python -m repro bench --update-baseline'"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"perf baseline {p} is corrupt ({exc}); re-record it with "
            "'python -m repro bench --update-baseline'"
        ) from exc
    if not isinstance(doc.get("benchmarks"), dict):
        raise ValueError(f"baseline {p} has no 'benchmarks' mapping")
    return doc


def compare_to_baseline(
    current: dict[str, float], baseline: dict[str, Any]
) -> list[Comparison]:
    """Compare measured ``name -> ops/s`` against a baseline document.

    Benchmarks present in the baseline but absent from the run count as
    regressions (a silently dropped benchmark must not pass the gate);
    new benchmarks not yet in the baseline are ignored.
    """
    comps = []
    for name, base_ops in sorted(baseline["benchmarks"].items()):
        if not isinstance(base_ops, (int, float)) or base_ops <= 0:
            raise ValueError(f"baseline entry {name!r} is not a positive number")
        comps.append(Comparison(name, float(base_ops), current.get(name)))
    return comps


def check_against_baseline(
    current: dict[str, float],
    baseline: dict[str, Any] | None = None,
    tolerance: float | None = None,
    baseline_path: Path | None = None,
) -> tuple[bool, list[str]]:
    """The gate: ``(ok, report lines)``.

    ``tolerance`` defaults to the baseline document's own
    ``default_tolerance`` (falling back to 20%), so the committed file
    controls CI strictness.
    """
    if baseline is None:
        baseline = load_baseline(baseline_path)
    if tolerance is None:
        tolerance = float(baseline.get("default_tolerance", DEFAULT_TOLERANCE))
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    # Per-benchmark overrides for noise-dominated end-to-end benches
    # (wall-clock of a 3 s HPL run swings more than a tight 10^5-op
    # microbenchmark rate does).
    overrides = baseline.get("tolerances", {})

    def tol(name: str) -> float:
        return float(overrides.get(name, tolerance))

    comps = compare_to_baseline(current, baseline)
    lines = [c.describe(tol(c.name)) for c in comps]
    ok = not any(c.regressed(tol(c.name)) for c in comps)
    lines.append(
        f"perf gate: {'PASS' if ok else 'FAIL'} "
        f"({len(comps)} benchmarks, default tolerance {tolerance:.0%})"
    )
    return ok, lines


def results_by_name(docs: list[dict[str, Any]]) -> dict[str, float]:
    """Flatten ``BENCH_*.json`` documents into ``name -> ops/s``.

    A benchmark name appearing twice would let one measurement silently
    shadow the other in the regression gate, so collisions raise.
    """
    flat: dict[str, float] = {}
    owner: dict[str, str] = {}
    for doc in docs:
        suite = doc.get("suite", "?")
        for rec in doc["benchmarks"]:
            name = rec["name"]
            if name in flat:
                raise ValueError(
                    f"duplicate benchmark name {name!r}: reported by both "
                    f"suite {owner[name]!r} and suite {suite!r}"
                )
            flat[name] = rec["ops_per_s"]
            owner[name] = suite
    return flat
