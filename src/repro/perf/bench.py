"""Benchmark execution and the ``BENCH_*.json`` document format.

Methodology
-----------

* Each benchmark is a callable returning its operation count; it is run
  ``repeats`` times and the **best** wall-clock time is kept (the
  minimum is the standard estimator for CPU-bound microbenchmarks — all
  noise sources are additive).
* ``ops_per_s`` is ``ops / best_wall``; what an "op" is depends on the
  suite (engine: dispatched events, MPI: delivered messages, apps:
  whole study runs).
* Peak RSS is sampled from ``getrusage`` after the benchmark; it is a
  process-lifetime high-water mark, so per-benchmark values are
  monotone within one process and mainly useful at suite granularity.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Process peak resident set size, in bytes on every platform
    (``ru_maxrss`` is KiB on Linux, bytes on macOS)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one microbenchmark.

    ``extras`` carries suite-specific scalars (the serve suite's tail
    latencies and hit ratio) into the JSON record verbatim; the
    validator and the regression gate ignore keys they don't know.
    """

    name: str
    ops: int
    wall_s: float  # best-of-``repeats`` wall-clock, seconds
    ops_per_s: float
    repeats: int
    peak_rss_bytes: int
    extras: dict[str, float] = field(default_factory=dict)

    def as_record(self, seed_ops_per_s: float | None = None) -> dict[str, Any]:
        rec: dict[str, Any] = {
            "name": self.name,
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_s": self.ops_per_s,
            "repeats": self.repeats,
            "peak_rss_bytes": self.peak_rss_bytes,
        }
        for key in sorted(self.extras):
            rec.setdefault(key, self.extras[key])
        if seed_ops_per_s is not None:
            rec["seed_ops_per_s"] = seed_ops_per_s
            rec["speedup_vs_seed"] = self.ops_per_s / seed_ops_per_s
        return rec


def run_bench(
    name: str, fn: Callable[[], int], repeats: int = 3, warmup: bool = True
) -> BenchResult:
    """Run ``fn`` ``repeats`` times, keep the best wall time.

    ``fn`` must return the number of operations it performed (so sizes
    can vary without desynchronising the rate computation).  One
    untimed warm-up invocation precedes the timed repeats (bytecode
    specialisation and allocator warm-up otherwise penalise whichever
    benchmark happens to run first in the process); pass
    ``warmup=False`` for expensive end-to-end benchmarks.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if warmup:
        fn()
    perf = time.perf_counter
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        t0 = perf()
        ops = fn()
        t1 = perf()
        best = min(best, t1 - t0)
    if ops <= 0:
        raise ValueError(f"benchmark {name!r} reported no operations")
    return BenchResult(
        name=name,
        ops=ops,
        wall_s=best,
        ops_per_s=ops / best,
        repeats=repeats,
        peak_rss_bytes=peak_rss_bytes(),
    )


def _geomean(values: list[float]) -> float:
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


def suite_doc(
    suite: str,
    results: list[BenchResult],
    seed_ref: dict[str, float] | None = None,
) -> dict[str, Any]:
    """Assemble one ``BENCH_<suite>.json`` document.

    ``seed_ref`` maps benchmark name to the ops/s the pre-optimisation
    code achieved on the reference machine; when given, each record
    gains ``speedup_vs_seed`` and the document a geometric mean.
    """
    seed_ref = seed_ref or {}
    records = [r.as_record(seed_ref.get(r.name)) for r in results]
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "benchmarks": records,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    speedups = [r["speedup_vs_seed"] for r in records if "speedup_vs_seed" in r]
    if speedups:
        doc["geomean_speedup_vs_seed"] = _geomean(speedups)
    return doc


def validate_bench_doc(doc: Any) -> None:
    """Validate a ``BENCH_*.json`` document; raises ``ValueError``
    listing every problem found (no external schema library needed)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if not isinstance(doc.get("suite"), str) or not doc.get("suite"):
        problems.append("suite must be a non-empty string")
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss < 0:
        problems.append("peak_rss_bytes must be a non-negative integer")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        problems.append("benchmarks must be a non-empty list")
        benches = []
    seen: set[str] = set()
    for i, rec in enumerate(benches):
        where = f"benchmarks[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where} is not an object")
            continue
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}.name must be a non-empty string")
        elif name in seen:
            problems.append(f"{where}.name {name!r} is duplicated")
        else:
            seen.add(name)
        for field, typ in (
            ("ops", int),
            ("wall_s", float),
            ("ops_per_s", float),
            ("repeats", int),
            ("peak_rss_bytes", int),
        ):
            v = rec.get(field)
            ok = isinstance(v, typ) or (typ is float and isinstance(v, int))
            if not ok or (isinstance(v, (int, float)) and v <= 0):
                problems.append(f"{where}.{field} must be a positive {typ.__name__}")
    if problems:
        raise ValueError(
            "invalid bench document:\n  " + "\n  ".join(problems)
        )
