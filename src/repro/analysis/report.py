"""Paper-vs-measured comparison builder (feeds EXPERIMENTS.md).

Every quantitative claim the paper text makes is encoded here with its
paper value; ``build_comparisons`` measures the model and returns
:class:`~repro.core.results.Comparison` records.  The test suite asserts
the load-bearing ones stay within tolerance, so calibration drift is
caught by CI rather than by a reader.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import Comparison
from repro.core.study import MobileSoCStudy


def build_comparisons(study: MobileSoCStudy | None = None) -> list[Comparison]:
    """Measure the model against every numeric claim in the paper text."""
    s = study or MobileSoCStudy()
    out: list[Comparison] = []

    sp = s.speedup_vs_baseline
    out += [
        Comparison("Fig3", "Tegra3 speedup vs Tegra2 @1GHz", 1.09,
                   sp("Tegra3", 1.0)),
        Comparison("Fig3", "Exynos speedup vs Tegra2 @1GHz", 1.30,
                   sp("Exynos5250", 1.0)),
        Comparison("Fig3", "i7/Exynos @1GHz ('two times slower')", 2.0,
                   sp("Corei7-2760QM", 1.0) / sp("Exynos5250", 1.0)),
        Comparison("Fig3", "Tegra3@max vs Tegra2@max", 1.36,
                   sp("Tegra3", 1.3)),
        Comparison("Fig3", "Exynos@max vs Tegra2@max", 2.3,
                   sp("Exynos5250", 1.7)),
        Comparison("Fig3", "i7@max vs Exynos@max ('3 times')", 3.0,
                   sp("Corei7-2760QM", 2.4) / sp("Exynos5250", 1.7)),
    ]

    # Energy-per-iteration at 1 GHz single-core (absolute Joules).
    from repro.kernels.registry import all_kernels
    from repro.timing.measurement import PowerMeter, measure_kernel

    meter = PowerMeter(seed=s.seed)
    paper_energy = {
        "Tegra2": 23.93,
        "Tegra3": 19.62,
        "Exynos5250": 16.95,
        "Corei7-2760QM": 28.57,
    }
    for plat, paper_j in paper_energy.items():
        measured = float(
            np.mean(
                [
                    measure_kernel(
                        s.platforms[plat], k, 1.0, cores=1, meter=meter
                    )[1].energy_j
                    for k in all_kernels()
                ]
            )
        )
        out.append(
            Comparison("Sec3.1.1", f"{plat} J/iter @1GHz serial",
                       paper_j, measured, unit="J")
        )

    fig5 = s.figure5()
    for plat, eff in (
        ("Tegra2", 0.62), ("Tegra3", 0.27),
        ("Exynos5250", 0.52), ("Corei7-2760QM", 0.57),
    ):
        out.append(
            Comparison("Fig5", f"{plat} STREAM efficiency vs peak",
                       eff, fig5[plat]["efficiency_vs_peak"])
        )
    out.append(
        Comparison("Fig5", "Exynos/Tegra multicore bandwidth", 4.5,
                   fig5["Exynos5250"]["multi"]["Triad"]
                   / fig5["Tegra2"]["multi"]["Triad"])
    )

    fig7 = s.figure7()
    paper_net = {
        "Tegra2 TCP/IP 1.0GHz": (100.0, 65.0),
        "Tegra2 OpenMX 1.0GHz": (65.0, 117.0),
        "Exynos5 TCP/IP 1.0GHz": (125.0, 63.0),
        "Exynos5 OpenMX 1.0GHz": (93.0, 69.0),
        "Exynos5 OpenMX 1.4GHz": (83.7, 75.0),
    }
    for label, (lat, bw) in paper_net.items():
        meas_lat = fig7[label]["small_message_latency_us"]
        meas_bw = max(fig7[label]["bandwidth_mbs"].values())
        out.append(Comparison("Fig7", f"{label} latency", lat, meas_lat, "us"))
        out.append(Comparison("Fig7", f"{label} bandwidth", bw, meas_bw, "MB/s"))

    head = s.headline_hpl()
    out += [
        Comparison("Sec4", "HPL GFLOPS on 96 nodes", 97.0, head["gflops"]),
        Comparison("Sec4", "HPL efficiency", 0.51, head["efficiency"]),
        Comparison("Sec4", "MFLOPS/W", 120.0, head["mflops_per_watt"]),
    ]

    pen = s.latency_penalties()
    out += [
        Comparison("Sec4.1", "SNB penalty @100us", 0.90, pen["snb_100us"]),
        Comparison("Sec4.1", "SNB penalty @65us", 0.60, pen["snb_65us"]),
        Comparison("Sec4.1", "Arndale penalty @100us", 0.50, pen["arndale_100us"]),
        Comparison("Sec4.1", "Arndale penalty @65us", 0.40, pen["arndale_65us"]),
    ]

    t4 = s.table4()
    paper_t4 = {
        "Tegra2": (0.06, 0.63, 2.50),
        "Tegra3": (0.02, 0.24, 0.96),
        "Exynos5250": (0.02, 0.18, 0.74),
        "Corei7-2760QM": (0.00, 0.02, 0.07),
    }
    links = ("1GbE", "10GbE", "40Gb InfiniBand")
    for plat, vals in paper_t4.items():
        for link, paper_v in zip(links, vals):
            out.append(
                Comparison("Table4", f"{plat} {link} bytes/FLOPS",
                           paper_v, round(t4[plat][link], 2))
            )

    from repro.cluster.reliability import DramErrorModel

    out.append(
        Comparison(
            "Sec6.3", "1500-node daily DRAM error probability", 0.30,
            DramErrorModel(0.045).system_daily_error_probability(1500, 2),
        )
    )

    from repro.core.green500 import megaproto_claim

    mp_rank, _holds = megaproto_claim()
    out.append(
        Comparison(
            "Sec2", "MegaProto rank on first Green500 (45-70 claimed)",
            57.5, mp_rank,
            note="paper gives a range; 57.5 is its midpoint",
        )
    )
    return out


def comparisons_markdown(comparisons: list[Comparison]) -> str:
    """Markdown table of paper-vs-measured records."""
    lines = [
        "| artefact | quantity | paper | measured | ratio |",
        "|---|---|---:|---:|---:|",
    ]
    for c in comparisons:
        lines.append(
            f"| {c.artefact} | {c.quantity} | {c.paper_value:.3g}"
            f"{c.unit and ' ' + c.unit} | {c.measured_value:.3g}"
            f"{c.unit and ' ' + c.unit} | {c.ratio:.2f} |"
        )
    return "\n".join(lines)
