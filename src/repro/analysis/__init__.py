"""Figure/table regeneration as plain text.

The benchmark harness uses these renderers to print the same series the
paper plots; :mod:`repro.analysis.report` builds the paper-vs-measured
EXPERIMENTS.md records.
"""

from repro.analysis.figures import ascii_chart, render_figure
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.analysis.report import build_comparisons, comparisons_markdown
from repro.analysis.trace_report import (
    makespan_s,
    rank_breakdown,
    render_rank_breakdown,
)

__all__ = [
    "ascii_chart",
    "render_figure",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "build_comparisons",
    "comparisons_markdown",
    "makespan_s",
    "rank_breakdown",
    "render_rank_breakdown",
]
