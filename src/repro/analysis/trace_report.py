"""Per-rank compute/comm/wait attribution from a recorded span trace.

The deliverable of the ARM-HPC characterisation literature (and of the
paper's own Paraver sessions) is a table answering *where did each
rank's time go*: computing, occupying the CPU with protocol processing
(``comm``), or blocked waiting for data (``wait``).  This module turns
a :class:`~repro.obs.recorder.TraceRecorder` into exactly that table —
the same numbers Perfetto would show when the Chrome trace is loaded,
but as text for terminals, tests and EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro.core.results import render_table
from repro.obs.recorder import TraceRecorder

#: Span categories attributed per rank; ``net`` (wire transfers) is
#: listed separately because it overlaps compute on the receiver side.
PHASES = ("compute", "comm", "wait")


def makespan_s(rec: TraceRecorder) -> float:
    """Last simulated timestamp anywhere in the trace."""
    stamps = [s.t1 for s in rec.spans]
    stamps += [i.t for i in rec.instants]
    stamps += [c.t for c in rec.counters]
    return max(stamps, default=0.0)


def rank_breakdown(rec: TraceRecorder) -> dict[int, dict[str, float]]:
    """``rank -> {compute, comm, wait, net} -> seconds`` (sorted)."""
    out: dict[int, dict[str, float]] = {}
    for s in rec.spans:
        row = out.setdefault(
            s.rank, {c: 0.0 for c in PHASES + ("net",)}
        )
        if s.cat in row:
            row[s.cat] += s.duration_s
    return dict(sorted(out.items()))


def render_rank_breakdown(rec: TraceRecorder) -> str:
    """The per-rank time-attribution table, plus a totals row."""
    span = makespan_s(rec)
    breakdown = rank_breakdown(rec)
    if not breakdown:
        return "(no rank spans recorded)"

    def pct(x: float) -> str:
        return f"{100.0 * x / span:5.1f}%" if span > 0 else "-"

    headers = [
        "rank", "compute s", "comm s", "wait s", "net s",
        "compute", "wait",
    ]
    rows = []
    for rank, d in breakdown.items():
        rows.append(
            [
                rank,
                f"{d['compute']:.6f}",
                f"{d['comm']:.6f}",
                f"{d['wait']:.6f}",
                f"{d['net']:.6f}",
                pct(d["compute"]),
                pct(d["wait"]),
            ]
        )
    total = {
        c: sum(d[c] for d in breakdown.values())
        for c in PHASES + ("net",)
    }
    n = len(breakdown)
    rows.append(
        [
            "all",
            f"{total['compute']:.6f}",
            f"{total['comm']:.6f}",
            f"{total['wait']:.6f}",
            f"{total['net']:.6f}",
            pct(total["compute"] / n),
            pct(total["wait"] / n),
        ]
    )
    table = render_table(headers, rows)
    return f"makespan: {span:.6f} s over {n} ranks\n{table}"
