"""Plain-text renderings of Tables 1-4."""

from __future__ import annotations

from repro.apps import APPLICATIONS
from repro.arch.catalog import PLATFORMS
from repro.core.metrics import bytes_per_flop_table
from repro.core.results import render_table
from repro.kernels.registry import table2_rows


def render_table1() -> str:
    """Table 1: platforms under evaluation."""
    rows = [p.describe() for p in PLATFORMS.values()]
    keys = list(rows[0].keys())
    # Transpose: attributes as rows, platforms as columns (paper layout).
    headers = ["Attribute"] + [str(r["SoC"]) for r in rows]
    body = [[k] + [str(r[k]) for r in rows] for k in keys if k != "SoC"]
    return render_table(headers, body)


def render_table2() -> str:
    """Table 2: the micro-kernel suite."""
    rows = table2_rows()
    return render_table(
        ["Kernel tag", "Full name", "Properties"],
        [[r["Kernel tag"], r["Full name"], r["Properties"]] for r in rows],
    )


def render_table3() -> str:
    """Table 3: applications for scalability evaluation."""
    return render_table(
        ["Application", "Description"],
        [[app.name, app.description] for app in APPLICATIONS.values()],
    )


def render_table4() -> str:
    """Table 4: network bytes/FLOPS ratios (FP64, excluding GPU)."""
    data = bytes_per_flop_table(list(PLATFORMS.values()))
    links = list(next(iter(data.values())).keys())
    return render_table(
        ["Platform"] + links,
        [[plat] + [row[l] for l in links] for plat, row in data.items()],
    )
