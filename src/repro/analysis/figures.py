"""ASCII renderings of the paper's figures.

Terminal-friendly scatter/line charts: series are plotted on a character
grid with optional log axes.  These are deliberately simple — the data
they draw is the reproduction artefact; the chart is a convenience.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Plot named series of (x, y) points on a character grid."""
    if not series:
        raise ValueError("nothing to plot")
    pts_all = [p for pts in series.values() for p in pts]
    if not pts_all:
        raise ValueError("series are empty")

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [tx(x) for x, _ in pts_all]
    ys = [ty(y) for _, y in pts_all]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = int((tx(x) - x0) / xr * (width - 1))
            row = height - 1 - int((ty(y) - y0) / yr * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    ymax_label = f"{10**y1:.3g}" if log_y else f"{y1:.3g}"
    ymin_label = f"{10**y0:.3g}" if log_y else f"{y0:.3g}"
    for i, row in enumerate(grid):
        prefix = ymax_label if i == 0 else (ymin_label if i == height - 1 else "")
        lines.append(f"{prefix:>10s} |" + "".join(row))
    xmin_label = f"{10**x0:.4g}" if log_x else f"{x0:.4g}"
    xmax_label = f"{10**x1:.4g}" if log_x else f"{x1:.4g}"
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + xmin_label + " " * max(1, width - 14) + xmax_label)
    legend = "  ".join(
        f"{m}={name}" for (name, _), m in zip(series.items(), _MARKERS)
    )
    lines.append("   " + legend)
    return "\n".join(lines)


def render_figure(name: str, data: dict) -> str:
    """Render one named figure from the study's data structures."""
    if name == "figure1":
        series = {
            cat: list(zip(*data[cat])) and list(zip(data[cat][0], data[cat][1]))
            for cat in data
        }
        return ascii_chart(
            series, title="Figure 1: TOP500 systems by architecture class"
        )
    if name in ("figure2a", "figure2b"):
        keys = (
            ("vector_points", "micro_points")
            if name == "figure2a"
            else ("server_points", "mobile_points")
        )
        series = {
            k.replace("_points", ""): [
                (p.year, p.peak_mflops) for p in data[k]
            ]
            for k in keys
        }
        return ascii_chart(
            series,
            log_y=True,
            title=f"{name}: peak FP64 MFLOPS over time (log scale)",
        )
    if name in ("figure3", "figure4"):
        perf = {
            plat: [(pt["freq_ghz"], pt["speedup"]) for pt in pts]
            for plat, pts in data.items()
        }
        energy = {
            plat: [(pt["freq_ghz"], pt["energy_norm"]) for pt in pts]
            for plat, pts in data.items()
        }
        mode = "single-core" if name == "figure3" else "multi-core"
        return (
            ascii_chart(
                perf, log_y=True, title=f"{name}(a): {mode} speedup vs Tegra2@1GHz"
            )
            + "\n\n"
            + ascii_chart(
                energy, title=f"{name}(b): {mode} per-iteration energy (norm.)"
            )
        )
    if name == "figure5":
        single = {
            plat: list(enumerate(d["single"].values()))
            for plat, d in data.items()
        }
        multi = {
            plat: list(enumerate(d["multi"].values()))
            for plat, d in data.items()
        }
        return (
            ascii_chart(
                single, log_y=True,
                title="figure5(a): single-core STREAM bandwidth "
                      "(x: Copy/Scale/Add/Triad)",
            )
            + "\n\n"
            + ascii_chart(
                multi, log_y=True,
                title="figure5(b): full-SoC STREAM bandwidth",
            )
        )
    if name == "figure6":
        series = {
            app: list(sp.items()) for app, sp in data.items()
        }
        series["ideal"] = [(n, float(n)) for n in sorted(
            {n for sp in data.values() for n in sp}
        )]
        return ascii_chart(
            series, title="Figure 6: scalability of HPC applications on Tibidabo"
        )
    if name == "figure7":
        lat = {
            label: list(d["latency_us"].items())
            for label, d in data.items()
        }
        bw = {
            label: list(d["bandwidth_mbs"].items())
            for label, d in data.items()
        }
        return (
            ascii_chart(lat, title="Figure 7(a-c): ping-pong latency (us)")
            + "\n\n"
            + ascii_chart(
                bw, log_x=True, title="Figure 7(d-f): effective bandwidth (MB/s)"
            )
        )
    raise KeyError(f"unknown figure {name!r}")
