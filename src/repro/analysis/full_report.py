"""One-shot report writer: every artefact into a single markdown file.

``write_full_report(path)`` regenerates the complete campaign (figures,
tables, headline, comparisons, the extension studies) and writes a
self-contained markdown document — the artefact a reviewer would ask
for.  Used by the CLI's downstream consumers and tested for structural
completeness.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.analysis.figures import render_figure
from repro.analysis.report import build_comparisons, comparisons_markdown
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.study import MobileSoCStudy


def _section(buf: io.StringIO, title: str, body: str) -> None:
    buf.write(f"\n## {title}\n\n")
    if body.lstrip().startswith("|"):
        buf.write(body)
    else:
        buf.write("```\n")
        buf.write(body.rstrip())
        buf.write("\n```\n")


def build_full_report(study: MobileSoCStudy | None = None,
                      quick: bool = True) -> str:
    """Render the complete study as one markdown document."""
    s = study or MobileSoCStudy()
    buf = io.StringIO()
    buf.write(
        "# Reproduction report — Supercomputing with Commodity CPUs: "
        "Are Mobile SoCs Ready for HPC? (SC'13)\n"
    )

    _section(buf, "Table 1 — platforms under evaluation", render_table1())
    _section(buf, "Table 2 — micro-kernel suite", render_table2())
    _section(buf, "Table 3 — applications", render_table3())
    _section(buf, "Table 4 — network bytes/FLOPS", render_table4())

    _section(buf, "Figure 1 — TOP500 share",
             render_figure("figure1", s.figure1()))
    _section(buf, "Figure 2a — vector vs commodity",
             render_figure("figure2a", s.figure2a()))
    _section(buf, "Figure 2b — server vs mobile",
             render_figure("figure2b", s.figure2b()))
    _section(buf, "Figure 3 — single-core sweep",
             render_figure("figure3", s.figure3()))
    _section(buf, "Figure 4 — multi-core sweep",
             render_figure("figure4", s.figure4()))

    f5 = s.figure5()
    stream = "\n".join(
        f"{plat:14s} single triad {d['single']['Triad']:6.2f} GB/s  "
        f"multi {d['multi']['Triad']:6.2f} GB/s  "
        f"eff {d['efficiency_vs_peak']:.0%}"
        for plat, d in f5.items()
    )
    _section(buf, "Figure 5 — STREAM", stream)

    counts = (1, 4, 16, 48, 96) if quick else (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
    _section(buf, "Figure 6 — application scalability",
             render_figure("figure6", s.figure6(counts)))
    _section(buf, "Figure 7 — interconnect",
             render_figure("figure7", s.figure7()))

    head = s.headline_hpl()
    _section(
        buf,
        "Headline — HPL on 96 nodes",
        "\n".join(f"{k}: {v:.3f}" for k, v in head.items()),
    )

    from repro.core.energy_study import energy_to_solution

    e = energy_to_solution("SPECFEM3D")
    _section(
        buf,
        "Energy-to-solution vs Nehalem [13]",
        f"time ratio {e.time_ratio:.2f}x slower, "
        f"energy ratio {e.energy_ratio:.2f}x lower",
    )

    from repro.core.green500 import megaproto_claim, tibidabo_positioning

    mp_rank, _ = megaproto_claim()
    tb = tibidabo_positioning(head["mflops_per_watt"])
    _section(
        buf,
        "Green500 positioning",
        f"MegaProto Nov-2007 rank ~{mp_rank:.0f} (claim: 45-70)\n"
        f"Tibidabo June-2013 rank ~{tb['estimated_rank']:.0f}",
    )

    buf.write("\n## Paper vs measured — all encoded claims\n\n")
    buf.write(comparisons_markdown(build_comparisons(s)))
    buf.write("\n")
    return buf.getvalue()


def write_full_report(
    path: str | Path, study: MobileSoCStudy | None = None, quick: bool = True
) -> Path:
    """Write the report to ``path``; returns the path."""
    out = Path(path)
    out.write_text(build_full_report(study, quick=quick))
    return out
