"""Memory-controller and DRAM bandwidth/latency model.

Table 1 of the paper lists, per platform: number of channels, channel
width, maximum DRAM frequency, and the resulting peak bandwidth.  Figure 5
then reports *measured* STREAM bandwidth, which reaches only a fraction of
peak: 62% (Tegra 2), 27% (Tegra 3), 52% (Exynos 5250) and 57% (Core
i7-2760QM) with all cores, and considerably less with a single core.

The model has two regimes:

* **concurrency-limited** (few cores active): each core can keep only
  ``mlp`` cache-line requests in flight, so its achievable bandwidth is
  ``mlp * line_bytes / dram_latency`` (Little's law).  The Cortex-A15's
  larger number of outstanding misses is the paper's explanation for the
  4.5× single-core STREAM advantage of the Exynos 5250 over Tegra.
* **controller-limited** (many cores): the sum of per-core demands
  saturates at ``stream_efficiency * peak_bandwidth``, the calibrated
  fraction of peak the controller actually sustains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySystem:
    """DRAM + memory-controller description for one platform.

    :param channels: independent memory channels.
    :param width_bits: data width per channel.
    :param freq_mhz: maximum DRAM I/O frequency (MHz, per Table 1).
    :param peak_bandwidth_gbs: peak bandwidth in GB/s.  Stored explicitly
        (it is what the paper tabulates); :meth:`theoretical_peak_gbs`
        recomputes it from the channel parameters as a cross-check.
    :param latency_ns: loaded DRAM access latency seen by a core miss.
    :param stream_efficiency: calibrated fraction of peak reached by the
        all-cores STREAM triad (paper Section 3.2).
    :param line_bytes: cache-line / DRAM burst size.
    :param ecc: whether the controller supports ECC.  None of the mobile
        SoCs do — a key limitation in Section 6.3.
    """

    channels: int
    width_bits: int
    freq_mhz: float
    peak_bandwidth_gbs: float
    latency_ns: float
    stream_efficiency: float
    line_bytes: int = 64
    ecc: bool = False

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.width_bits <= 0:
            raise ValueError("channels and width must be positive")
        if not (0.0 < self.stream_efficiency <= 1.0):
            raise ValueError("stream_efficiency must be in (0, 1]")
        if self.latency_ns <= 0:
            raise ValueError("latency must be positive")

    def theoretical_peak_gbs(self) -> float:
        """Peak from channel parameters: channels × width × 2 (DDR) × freq."""
        bytes_per_transfer = self.channels * self.width_bits / 8.0
        return bytes_per_transfer * 2.0 * self.freq_mhz * 1e6 / 1e9

    def sustained_bandwidth_gbs(self) -> float:
        """Controller-limited sustained (STREAM-like) bandwidth, GB/s."""
        return self.peak_bandwidth_gbs * self.stream_efficiency

    def per_core_bandwidth_gbs(self, mlp: float) -> float:
        """Concurrency-limited bandwidth of one core with ``mlp``
        outstanding line misses (Little's law), GB/s."""
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        return mlp * self.line_bytes / self.latency_ns  # B/ns == GB/s

    def effective_bandwidth_gbs(
        self, active_cores: int, mlp_per_core: float
    ) -> float:
        """Achievable bandwidth for ``active_cores`` concurrent streams.

        The minimum of the aggregate concurrency limit and the controller
        limit; this single expression produces both the poor single-core
        Tegra numbers and the saturated multi-core numbers of Figure 5.
        """
        if active_cores <= 0:
            raise ValueError("need at least one active core")
        concurrency = active_cores * self.per_core_bandwidth_gbs(mlp_per_core)
        return min(concurrency, self.sustained_bandwidth_gbs())

    def dram_latency_cycles(self, core_freq_ghz: float) -> float:
        """DRAM latency expressed in core cycles at ``core_freq_ghz``."""
        if core_freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        return self.latency_ns * core_freq_ghz
