"""Functional set-associative cache simulator and cache hierarchies.

Two consumers use this module:

* the trace-driven mode of the timing model, which feeds sampled address
  streams through a :class:`CacheHierarchy` to estimate miss ratios for a
  kernel's access pattern, and
* the unit/property tests, which check classical cache invariants
  (inclusion of hit addresses, LRU behaviour, capacity/conflict misses).

The model is a conventional write-allocate, write-back, LRU,
set-associative cache.  Latencies are in cycles; the hierarchy converts
them into an average memory access time (AMAT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class CacheConfig:
    """Static parameters of one cache level.

    :param name: level name (``"L1D"``, ``"L2"``, ...).
    :param size_bytes: total capacity.
    :param line_bytes: cache-line size (power of two).
    :param associativity: ways per set.
    :param latency_cycles: access (hit) latency.
    :param shared: whether the level is shared between all cores of the SoC
        (the Tegra/Exynos L2 is shared; Sandy Bridge L2 is private with a
        shared L3 — Table 1 of the paper).
    """

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: int
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size must be a multiple of line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class Cache:
    """One level of write-allocate, write-back, LRU set-associative cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[dict[int, int]] = [
            {} for _ in range(config.n_sets)
        ]  # tag -> LRU stamp
        self._dirty: list[set[int]] = [set() for _ in range(config.n_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- address arithmetic -------------------------------------------------
    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.n_sets, line // self.config.n_sets

    # -- operations ---------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address; returns ``True`` on hit.

        On a miss the line is allocated (write-allocate) and, if a dirty
        victim is evicted, a write-back is recorded.
        """
        idx, tag = self._index_tag(addr)
        self._clock += 1
        ways = self._sets[idx]
        if tag in ways:
            self.hits += 1
            ways[tag] = self._clock
            if write:
                self._dirty[idx].add(tag)
            return True

        self.misses += 1
        if len(ways) >= self.config.associativity:
            victim = min(ways, key=ways.__getitem__)
            del ways[victim]
            self.evictions += 1
            if victim in self._dirty[idx]:
                self._dirty[idx].discard(victim)
                self.writebacks += 1
        ways[tag] = self._clock
        if write:
            self._dirty[idx].add(tag)
        return False

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident (no LRU update)."""
        idx, tag = self._index_tag(addr)
        return tag in self._sets[idx]

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines written back."""
        wb = sum(
            1
            for idx, ways in enumerate(self._sets)
            for tag in ways
            if tag in self._dirty[idx]
        )
        self.writebacks += wb
        self._sets = [{} for _ in range(self.config.n_sets)]
        self._dirty = [set() for _ in range(self.config.n_sets)]
        return wb

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0


@dataclass
class HierarchyStats:
    """Per-level hit/miss counts plus derived AMAT."""

    per_level: dict[str, tuple[int, int]] = field(default_factory=dict)
    dram_accesses: int = 0
    amat_cycles: float = 0.0


class CacheHierarchy:
    """An ordered chain of cache levels in front of DRAM.

    ``access`` walks levels in order; the first hit stops the walk, a miss
    everywhere counts as a DRAM access.  ``amat`` folds per-level miss
    ratios with the level latencies plus a DRAM latency into the average
    memory access time, which the core timing model uses for latency-bound
    access patterns.
    """

    def __init__(
        self, levels: Sequence[CacheConfig], dram_latency_cycles: float
    ) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.levels = [Cache(cfg) for cfg in levels]
        self.dram_latency_cycles = float(dram_latency_cycles)
        self.dram_accesses = 0

    def access(self, addr: int, write: bool = False) -> str:
        """Access an address; returns the name of the level that hit, or
        ``"DRAM"`` if all levels missed.  Lines are allocated on the way
        back (inclusive hierarchy)."""
        hit_level = "DRAM"
        for cache in self.levels:
            if cache.access(addr, write=write):
                hit_level = cache.config.name
                break
        else:
            self.dram_accesses += 1
        return hit_level

    def run_trace(
        self, addresses: Iterable[int], writes: Iterable[bool] | None = None
    ) -> HierarchyStats:
        """Feed a full address trace; returns per-level statistics."""
        if writes is None:
            for a in addresses:
                self.access(int(a))
        else:
            for a, w in zip(addresses, writes):
                self.access(int(a), write=bool(w))
        return self.stats()

    def stats(self) -> HierarchyStats:
        st = HierarchyStats()
        for cache in self.levels:
            st.per_level[cache.config.name] = (cache.hits, cache.misses)
        st.dram_accesses = self.dram_accesses
        st.amat_cycles = self.amat()
        return st

    def amat(self) -> float:
        """Average memory access time in cycles, folded over the levels."""
        total = self.levels[0].accesses
        if total == 0:
            return float(self.levels[0].config.latency_cycles)
        amat = self.dram_latency_cycles
        # Fold from the innermost level outwards:
        # AMAT_i = lat_i + miss_ratio_i * AMAT_{i+1}
        for cache in reversed(self.levels):
            amat = cache.config.latency_cycles + cache.miss_ratio * amat
        return amat

    def reset(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
            cache.flush()
        self.dram_accesses = 0


def strided_trace(
    n_accesses: int, stride_bytes: int, base: int = 0
) -> list[int]:
    """Synthetic strided address stream (helper for pattern studies)."""
    return [base + i * stride_bytes for i in range(n_accesses)]


def estimate_miss_ratio(
    levels: Sequence[CacheConfig],
    footprint_bytes: int,
    stride_bytes: int,
    dram_latency_cycles: float = 100.0,
    passes: int = 2,
) -> float:
    """Estimate the last-level miss ratio of a strided sweep over a
    ``footprint_bytes`` working set, repeated ``passes`` times.

    This is the sampled-trace estimator used by tests and by the access
    pattern documentation; the roofline executor uses analytic reuse
    factors instead (much faster) but is validated against this.
    """
    if stride_bytes <= 0:
        raise ValueError("stride must be positive")
    hier = CacheHierarchy(levels, dram_latency_cycles)
    n = max(1, footprint_bytes // stride_bytes)
    for _ in range(passes):
        for i in range(n):
            hier.access(i * stride_bytes)
    last = hier.levels[-1]
    return last.miss_ratio
