"""Hardware substrate: parametric models of the SoCs and CPUs under study.

This package models the four platforms of Table 1 of the paper (NVIDIA
Tegra 2, NVIDIA Tegra 3, Samsung Exynos 5250 and Intel Core i7-2760QM) as
compositions of reusable architectural components:

* :mod:`repro.arch.isa` — instruction-set descriptors and operation mixes,
* :mod:`repro.arch.core_model` — per-core pipeline/throughput model,
* :mod:`repro.arch.cache` — a functional set-associative cache simulator,
* :mod:`repro.arch.dram` — memory-controller and DRAM bandwidth model,
* :mod:`repro.arch.power` — CMOS + board power model,
* :mod:`repro.arch.dvfs` — voltage/frequency operating points and governors,
* :mod:`repro.arch.soc` — the SoC/platform aggregates,
* :mod:`repro.arch.catalog` — the concrete Table 1 instances.
"""

from repro.arch.isa import ISA, OpClass, InstructionMix, ARMV7, ARMV8, X86_64
from repro.arch.cache import CacheConfig, Cache, CacheHierarchy
from repro.arch.dram import MemorySystem
from repro.arch.core_model import CoreModel
from repro.arch.power import PowerModel
from repro.arch.dvfs import OperatingPoint, DVFSTable, Governor
from repro.arch.soc import SoC, Platform, GPUInfo, BoardInfo
from repro.arch.catalog import (
    PLATFORMS,
    tegra2,
    tegra3,
    exynos5250,
    core_i7_2760qm,
    armv8_projection,
    get_platform,
)
from repro.arch.features import Feature, FeatureAssessment, assess, readiness_matrix
from repro.arch.servers import SERVER_PLATFORMS

__all__ = [
    "ISA",
    "OpClass",
    "InstructionMix",
    "ARMV7",
    "ARMV8",
    "X86_64",
    "CacheConfig",
    "Cache",
    "CacheHierarchy",
    "MemorySystem",
    "CoreModel",
    "PowerModel",
    "OperatingPoint",
    "DVFSTable",
    "Governor",
    "SoC",
    "Platform",
    "GPUInfo",
    "BoardInfo",
    "PLATFORMS",
    "tegra2",
    "tegra3",
    "exynos5250",
    "core_i7_2760qm",
    "armv8_projection",
    "get_platform",
    "Feature",
    "FeatureAssessment",
    "assess",
    "readiness_matrix",
    "SERVER_PLATFORMS",
]
