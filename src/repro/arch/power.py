"""Platform power model.

The paper measures *wall* power of whole developer boards/laptop with a
Yokogawa WT230 and observes (Section 3.1.2) that "the SoC is not the main
power sink in the system": increasing CPU frequency increases core power
at least linearly yet improves whole-platform energy efficiency, because
board components (VRMs, DRAM, multimedia circuitry, NICs, the laptop
panel's electronics, PSU losses) dominate.

We therefore model platform power as::

    P(f, n_active, bw_util) = P_board
                            + P_soc_static
                            + n_active * P_core_nominal * (f/f_nom) * (V(f)/V_nom)^2
                            + P_mem_max * bw_util

with a linear voltage/frequency relation between the DVFS table's extreme
operating points.  The per-platform constants are calibrated in
:mod:`repro.arch.catalog` against the paper's published energy-per-
iteration numbers (23.93 J Tegra 2, 19.62 J Tegra 3, 16.95 J Exynos,
28.57 J Core i7, all at 1 GHz single-core).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    """Wall-power model for one platform.

    :param board_watts: constant board/platform overhead (PSU losses,
        VRMs, NIC, multimedia circuitry; screen-off laptop base for i7).
    :param soc_static_watts: SoC leakage + always-on uncore.
    :param core_active_watts: dynamic power of ONE core running flat out
        at the *nominal* frequency/voltage point.
    :param nominal_freq_ghz: frequency at which ``core_active_watts`` is
        specified (1.0 GHz for every platform, matching the paper's main
        comparison point).
    :param vmin, vmax: supply voltage at the lowest/highest DVFS point.
    :param fmin_ghz, fmax_ghz: the DVFS frequency range.
    :param mem_dynamic_watts: extra power at 100% memory-bandwidth
        utilisation (DRAM + controller dynamic power).
    :param idle_core_fraction: fraction of ``core_active_watts`` burned by
        an idle (clock-gated) core.
    """

    board_watts: float
    soc_static_watts: float
    core_active_watts: float
    nominal_freq_ghz: float
    vmin: float
    vmax: float
    fmin_ghz: float
    fmax_ghz: float
    mem_dynamic_watts: float = 0.5
    idle_core_fraction: float = 0.12

    def __post_init__(self) -> None:
        if self.fmax_ghz <= 0 or self.fmin_ghz <= 0:
            raise ValueError("frequencies must be positive")
        if self.fmax_ghz < self.fmin_ghz:
            raise ValueError("fmax must be >= fmin")
        if self.vmax < self.vmin:
            raise ValueError("vmax must be >= vmin")
        for name in ("board_watts", "soc_static_watts", "core_active_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def voltage(self, freq_ghz: float) -> float:
        """Supply voltage at ``freq_ghz`` (linear V/f interpolation,
        clamped to the table's range)."""
        if self.fmax_ghz == self.fmin_ghz:
            return self.vmax
        f = min(max(freq_ghz, self.fmin_ghz), self.fmax_ghz)
        t = (f - self.fmin_ghz) / (self.fmax_ghz - self.fmin_ghz)
        return self.vmin + t * (self.vmax - self.vmin)

    def core_power(self, freq_ghz: float) -> float:
        """Dynamic power of one active core at ``freq_ghz`` (f·V² CMOS
        scaling around the nominal point)."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        v = self.voltage(freq_ghz)
        v_nom = self.voltage(self.nominal_freq_ghz)
        return (
            self.core_active_watts
            * (freq_ghz / self.nominal_freq_ghz)
            * (v / v_nom) ** 2
        )

    def platform_power(
        self,
        freq_ghz: float,
        active_cores: int,
        total_cores: int,
        mem_bw_utilisation: float = 0.3,
    ) -> float:
        """Total wall power with ``active_cores`` busy out of
        ``total_cores`` at ``freq_ghz``; ``mem_bw_utilisation`` in [0, 1]."""
        if not (0 <= active_cores <= total_cores):
            raise ValueError("active_cores must be within [0, total_cores]")
        if not (0.0 <= mem_bw_utilisation <= 1.0):
            raise ValueError("mem_bw_utilisation must be in [0, 1]")
        idle_cores = total_cores - active_cores
        return (
            self.board_watts
            + self.soc_static_watts
            + active_cores * self.core_power(freq_ghz)
            + idle_cores * self.idle_core_fraction * self.core_power(freq_ghz)
            + self.mem_dynamic_watts * mem_bw_utilisation
        )

    def idle_power(self, freq_ghz: float, total_cores: int) -> float:
        """Wall power with every core idle."""
        return self.platform_power(
            freq_ghz, 0, total_cores, mem_bw_utilisation=0.0
        )
