"""Instruction-set architecture descriptors and operation mixes.

The paper contrasts three ISAs:

* **ARMv7** — 32-bit; hardware double-precision floating point (VFP) is an
  *optional* feature, and the NEON SIMD unit has no FP64 support.  The
  soft-float / hard-float ABI distinction discussed in Section 6.2 is
  captured by :attr:`ISA.hardfp_abi`.
* **ARMv8** — 64-bit; FP64 is compulsory and is part of the SIMD (NEON)
  instruction set, doubling per-cycle FP64 throughput at equal frequency
  (Section 1 / Section 3.1.2 of the paper).
* **x86-64** — 64-bit with AVX (4-wide FP64 SIMD on Sandy Bridge).

Operation mixes (:class:`InstructionMix`) describe, per kernel iteration,
how the dynamic instruction stream splits across operation classes.  The
timing model uses them to derive achievable instruction throughput.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Dynamic operation classes used by the core timing model."""

    FP_FMA = "fp_fma"  #: fused multiply-add, counted as two FLOPs
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    INT_ALU = "int_alu"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"


#: FLOPs contributed by one operation of each class.
FLOPS_PER_OP: dict[OpClass, float] = {
    OpClass.FP_FMA: 2.0,
    OpClass.FP_ADD: 1.0,
    OpClass.FP_MUL: 1.0,
    OpClass.FP_DIV: 1.0,
    OpClass.INT_ALU: 0.0,
    OpClass.BRANCH: 0.0,
    OpClass.LOAD: 0.0,
    OpClass.STORE: 0.0,
}


@dataclass(frozen=True)
class InstructionMix:
    """A dynamic-instruction histogram, normalised or absolute.

    Values are *operation counts* (not fractions); use :meth:`normalised`
    to obtain fractions.  An instruction mix with all-zero counts is not
    meaningful and most consumers reject it.
    """

    counts: dict[OpClass, float] = field(default_factory=dict)

    def total(self) -> float:
        """Total number of operations in the mix."""
        return float(sum(self.counts.values()))

    def flops(self) -> float:
        """Total floating-point operations represented by the mix."""
        return float(
            sum(FLOPS_PER_OP[op] * n for op, n in self.counts.items())
        )

    def fraction(self, op: OpClass) -> float:
        """Fraction of operations that belong to ``op`` (0 if empty)."""
        t = self.total()
        if t == 0:
            return 0.0
        return self.counts.get(op, 0.0) / t

    def normalised(self) -> "InstructionMix":
        """Return a mix whose counts sum to 1 (no-op for an empty mix)."""
        t = self.total()
        if t == 0:
            return InstructionMix({})
        return InstructionMix({op: n / t for op, n in self.counts.items()})

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a mix with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return InstructionMix({op: n * factor for op, n in self.counts.items()})

    def merged(self, other: "InstructionMix") -> "InstructionMix":
        """Element-wise sum of two mixes."""
        out = dict(self.counts)
        for op, n in other.counts.items():
            out[op] = out.get(op, 0.0) + n
        return InstructionMix(out)

    def memory_ops(self) -> float:
        """Number of loads + stores."""
        return self.counts.get(OpClass.LOAD, 0.0) + self.counts.get(
            OpClass.STORE, 0.0
        )

    def arithmetic_intensity(self, bytes_per_mem_op: float = 8.0) -> float:
        """FLOPs per byte of memory traffic implied by the mix.

        This is the *instruction-level* intensity (every load/store counts);
        cache reuse is accounted for separately by the timing model.
        Returns ``inf`` for a mix without memory operations.
        """
        mem_bytes = self.memory_ops() * bytes_per_mem_op
        if mem_bytes == 0:
            return math.inf
        return self.flops() / mem_bytes


@dataclass(frozen=True)
class ISA:
    """Descriptor of an instruction-set architecture.

    :param name: canonical name, e.g. ``"ARMv7"``.
    :param address_bits: virtual address bits available to one process.
        ARMv7 is 32-bit (4 GB per process — a limitation Section 6.3 of the
        paper calls out); ARMv8 provides a 42-bit space.
    :param physical_address_bits: physical addressing (LPAE gives Cortex-A15
        a 40-bit physical space even though the ISA is 32-bit).
    :param simd_fp64_lanes: FP64 lanes in the SIMD unit; 0 when the SIMD
        unit cannot process double precision (ARMv7 NEON).
    :param fp64_optional: whether hardware FP64 is an optional ISA feature.
    :param hardfp_abi: whether the *default* distribution ABI passes FP
        values in FP registers.  ARMv7 distributions of the era defaulted to
        soft-float calling conventions (Section 6.2): the paper's team had to
        build custom ``hardfp`` images.
    """

    name: str
    address_bits: int
    physical_address_bits: int
    simd_fp64_lanes: int
    fp64_optional: bool
    hardfp_abi: bool

    @property
    def max_process_memory_bytes(self) -> int:
        """Largest per-process address space (bytes)."""
        return 1 << self.address_bits

    @property
    def max_physical_memory_bytes(self) -> int:
        """Largest addressable physical memory (bytes)."""
        return 1 << self.physical_address_bits

    def softfp_call_penalty(self) -> float:
        """Relative slowdown multiplier for FP-heavy call-dense code when the
        distribution uses the soft-float ABI.

        Section 6.2: with ``softfp``, function calls pass FP values through
        integer registers, "reducing performance accordingly".  We model the
        published ~10-15% penalty on call-dense FP code as a 1.12 multiplier.
        A hard-float ABI has no penalty.
        """
        return 1.0 if self.hardfp_abi else 1.12


ARMV7 = ISA(
    name="ARMv7",
    address_bits=32,
    physical_address_bits=40,  # LPAE on Cortex-A15
    simd_fp64_lanes=0,
    fp64_optional=True,
    hardfp_abi=False,
)

ARMV8 = ISA(
    name="ARMv8",
    address_bits=42,
    physical_address_bits=48,
    simd_fp64_lanes=2,
    fp64_optional=False,
    hardfp_abi=True,
)

X86_64 = ISA(
    name="x86-64",
    address_bits=48,
    physical_address_bits=46,
    simd_fp64_lanes=4,  # AVX on Sandy Bridge
    fp64_optional=False,
    hardfp_abi=True,
)
