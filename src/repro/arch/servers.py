"""Server-class comparator platforms (Section 2's related-work systems).

These are the micro-server SoCs and HPC nodes the paper positions mobile
SoCs against:

* **Calxeda EnergyCore ECX-1000** — four Cortex-A9 at 1.4 GHz with ECC
  memory, five integrated 10 GbE links and SATA: "low-power ARM
  commodity processor IP ... integrated into SoCs targeting the server
  market".
* **Applied Micro X-Gene** — eight ARMv8 (64-bit) cores, four 10 GbE.
* **Intel Atom S1260** — the "fairer" same-price-type comparison point
  of footnote 5 ($64 list), a low-power x86 server part.
* **TI KeyStone II** — Cortex-A15s plus a network protocol off-load
  engine (the Section 4.1 fix for software messaging overhead).
* **Dual-socket Intel Xeon X5570 (Nehalem)** — the comparison cluster
  node of the paper's earlier energy-to-solution study [13].

They reuse the same component models as the Table 1 platforms, so every
analysis (features, power, clusters) runs on them unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.arch.cache import CacheConfig
from repro.arch.core_model import CoreModel, cortex_a9, cortex_a15, cortex_a15_armv8
from repro.arch.dram import MemorySystem
from repro.arch.dvfs import DVFSTable, OperatingPoint
from repro.arch.isa import X86_64
from repro.arch.power import PowerModel
from repro.arch.soc import BoardInfo, Platform, SoC

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@lru_cache(maxsize=None)
def calxeda_ecx1000() -> Platform:
    """Calxeda EnergyCore ECX-1000: server-ised Cortex-A9 (Section 2)."""
    soc = SoC(
        name="EnergyCore-ECX1000",
        core=cortex_a9(),
        n_cores=4,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 32, 4, 4),
            CacheConfig("L2", 4 * MIB, 32, 8, 25, shared=True),
        ),
        memory=MemorySystem(
            channels=1,
            width_bits=64,
            freq_mhz=667.0,
            peak_bandwidth_gbs=10.6,
            latency_ns=120.0,
            stream_efficiency=0.55,
            ecc=True,  # the server differentiator
        ),
        power=PowerModel(
            board_watts=2.0,  # node card, not a dev kit
            soc_static_watts=0.8,
            core_active_watts=1.0,
            nominal_freq_ghz=1.0,
            vmin=0.9,
            vmax=1.2,
            fmin_ghz=0.8,
            fmax_ghz=1.4,
        ),
        dvfs=DVFSTable(
            [OperatingPoint(0.8, 0.9), OperatingPoint(1.1, 1.05),
             OperatingPoint(1.4, 1.2)]
        ),
        l2_bw_bytes_per_cycle=2.3,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="Calxeda EnergyCard",
            dram_bytes=4 * GIB,
            dram_type="DDR3L-1333 ECC",
            ethernet_interfaces=("10GbE",) * 5,
            nic_attachment="onboard",  # fabric on-die
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes="Section 2 comparator; ECC + 5x10GbE on die.",
    )


@lru_cache(maxsize=None)
def xgene() -> Platform:
    """Applied Micro X-Gene: 8-core ARMv8 server SoC (Section 2)."""
    soc = SoC(
        name="X-Gene",
        core=replace(cortex_a15_armv8(), name="X-Gene/ARMv8"),
        n_cores=8,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 64, 4, 4),
            CacheConfig("L2", 256 * KIB, 64, 8, 12),
            CacheConfig("L3", 8 * MIB, 64, 16, 35, shared=True),
        ),
        memory=MemorySystem(
            channels=4,
            width_bits=64,
            freq_mhz=800.0,
            peak_bandwidth_gbs=51.2,
            latency_ns=90.0,
            stream_efficiency=0.60,
            ecc=True,
        ),
        power=PowerModel(
            board_watts=8.0,
            soc_static_watts=4.0,
            core_active_watts=2.0,
            nominal_freq_ghz=1.0,
            vmin=0.85,
            vmax=1.1,
            fmin_ghz=1.0,
            fmax_ghz=2.4,
        ),
        dvfs=DVFSTable(
            [OperatingPoint(1.0, 0.85), OperatingPoint(1.6, 0.95),
             OperatingPoint(2.4, 1.1)]
        ),
        l2_bw_bytes_per_cycle=6.0,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="X-Gene reference board",
            dram_bytes=32 * GIB,
            dram_type="DDR3-1600 ECC",
            ethernet_interfaces=("10GbE",) * 4,
            nic_attachment="onboard",
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes="Section 2 comparator: 64-bit, ECC, 4x10GbE.",
    )


def _atom_saltwell() -> CoreModel:
    """Atom S1260 'Centerton' core: in-order 2-wide x86 with SSE2 FP64."""
    return CoreModel(
        name="Saltwell",
        isa=X86_64,
        issue_width=2,
        fp64_flops_per_cycle=2.0,  # SSE2 2-wide, not pipelined FMA
        fma_latency_cycles=9,
        mlp=4.0,
        rob_entries=32,  # in-order-ish: tiny effective window
        branch_mispredict_cycles=13,
        smt_threads=2,
    )


@lru_cache(maxsize=None)
def atom_s1260() -> Platform:
    """Intel Atom S1260: the footnote-5 same-price-type reference."""
    soc = SoC(
        name="Atom-S1260",
        core=_atom_saltwell(),
        n_cores=2,
        threads_per_core=2,
        cache_levels=(
            CacheConfig("L1D", 24 * KIB // 8 * 8, 64, 6, 3),
            CacheConfig("L2", 512 * KIB, 64, 8, 15, shared=True),
        ),
        memory=MemorySystem(
            channels=1,
            width_bits=64,
            freq_mhz=667.0,
            peak_bandwidth_gbs=10.6,
            latency_ns=95.0,
            stream_efficiency=0.55,
            ecc=True,
        ),
        power=PowerModel(
            board_watts=5.0,
            soc_static_watts=1.5,
            core_active_watts=1.6,
            nominal_freq_ghz=1.0,
            vmin=0.8,
            vmax=1.0,
            fmin_ghz=0.6,
            fmax_ghz=2.0,
        ),
        dvfs=DVFSTable(
            [OperatingPoint(0.6, 0.8), OperatingPoint(1.3, 0.9),
             OperatingPoint(2.0, 1.0)]
        ),
        l2_bw_bytes_per_cycle=3.0,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="Centerton micro-server node",
            dram_bytes=8 * GIB,
            dram_type="DDR3-1333 ECC",
            ethernet_interfaces=("1GbE", "1GbE"),
            nic_attachment="onboard",
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes="Footnote 5: $64 list price; 8.5 W TDP class.",
        unit_price_usd=64.0,
    )


@lru_cache(maxsize=None)
def keystone2() -> Platform:
    """TI KeyStone II: Cortex-A15 plus a protocol off-load engine."""
    soc = SoC(
        name="KeyStone-II",
        core=cortex_a15(),
        n_cores=4,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 64, 2, 4),
            CacheConfig("L2", 4 * MIB, 64, 16, 21, shared=True),
        ),
        memory=MemorySystem(
            channels=1,
            width_bits=72,
            freq_mhz=800.0,
            peak_bandwidth_gbs=12.8,
            latency_ns=105.0,
            stream_efficiency=0.55,
            ecc=True,  # Section 6.3 names its ECC-capable controller
        ),
        power=PowerModel(
            board_watts=6.0,
            soc_static_watts=2.0,
            core_active_watts=1.25,
            nominal_freq_ghz=1.0,
            vmin=0.9,
            vmax=1.15,
            fmin_ghz=0.8,
            fmax_ghz=1.4,
        ),
        dvfs=DVFSTable(
            [OperatingPoint(0.8, 0.9), OperatingPoint(1.2, 1.05),
             OperatingPoint(1.4, 1.15)]
        ),
        l2_bw_bytes_per_cycle=2.7,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="KeyStone II EVM",
            dram_bytes=8 * GIB,
            dram_type="DDR3-1600 ECC",
            ethernet_interfaces=("10GbE", "1GbE"),
            nic_attachment="onboard",
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes="Section 4.1/6.3: hardware protocol accelerator.",
        protocol_offload=True,
    )


def _nehalem_core() -> CoreModel:
    return CoreModel(
        name="Nehalem",
        isa=X86_64,
        issue_width=4,
        fp64_flops_per_cycle=4.0,  # SSE 2-wide add + mul
        fma_latency_cycles=8,
        mlp=10.0,
        rob_entries=128,
        branch_mispredict_cycles=17,
        smt_threads=2,
    )


@lru_cache(maxsize=None)
def nehalem_node() -> Platform:
    """One socket of the Intel Nehalem (Xeon X5570-class) cluster used
    by the paper's energy-to-solution comparison study [13]."""
    soc = SoC(
        name="Xeon-X5570",
        core=_nehalem_core(),
        n_cores=4,
        threads_per_core=2,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 64, 8, 4),
            CacheConfig("L2", 256 * KIB, 64, 8, 11),
            CacheConfig("L3", 8 * MIB, 64, 16, 38, shared=True),
        ),
        memory=MemorySystem(
            channels=3,
            width_bits=64,
            freq_mhz=666.0,
            peak_bandwidth_gbs=32.0,
            latency_ns=65.0,
            stream_efficiency=0.55,
            ecc=True,
        ),
        power=PowerModel(
            board_watts=95.0,  # server board, fans, PSU losses
            soc_static_watts=25.0,
            core_active_watts=9.0,
            nominal_freq_ghz=1.0,
            vmin=0.85,
            vmax=1.2,
            fmin_ghz=1.6,
            fmax_ghz=2.93,
        ),
        dvfs=DVFSTable(
            [OperatingPoint(1.6, 0.85), OperatingPoint(2.26, 1.0),
             OperatingPoint(2.93, 1.2)]
        ),
        l2_bw_bytes_per_cycle=6.5,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="2U Nehalem server (one socket modelled)",
            dram_bytes=24 * GIB,
            dram_type="DDR3-1333 ECC",
            ethernet_interfaces=("1GbE", "1GbE"),
            nic_attachment="onboard",
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes=(
            "Reference node of the [13] energy-to-solution comparison: "
            "~4x faster, ~3x more energy than Tibidabo per solution."
        ),
    )


#: Section 2 comparator registry.
SERVER_PLATFORMS = {
    p.name: p
    for p in (
        calxeda_ecx1000(),
        xgene(),
        atom_s1260(),
        keystone2(),
        nehalem_node(),
    )
}
