"""Per-core pipeline and throughput model.

The paper distinguishes the Cortex-A9 (one fused multiply-add every two
cycles, small out-of-order window), the Cortex-A15 (fully pipelined FMA,
deeper out-of-order pipeline, more outstanding cache misses, better branch
predictor — Section 3, citing Microprocessor Report) and Intel Sandy
Bridge (AVX: 4-wide FP64 add + mul per cycle).

The model is deliberately coarse — a throughput model, not a cycle-level
simulator — because the study's conclusions rest on peak and *achieved*
throughput ratios, which are set by the parameters below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import ISA, InstructionMix, OpClass


@dataclass(frozen=True)
class CoreModel:
    """Static micro-architecture parameters of one CPU core.

    :param name: micro-architecture name (``"Cortex-A9"`` ...).
    :param isa: the :class:`~repro.arch.isa.ISA` implemented.
    :param issue_width: maximum instructions issued per cycle.
    :param fp64_flops_per_cycle: peak FP64 FLOPs per cycle.  Cortex-A9:
        1 FMA / 2 cycles = 1 FLOP/cycle.  Cortex-A15: pipelined FMA =
        2 FLOPs/cycle.  Sandy Bridge: AVX add + mul = 8 FLOPs/cycle.
        An ARMv8 core with the A15 micro-architecture doubles the A15
        figure to 4 (Section 3.1.2).
    :param fma_latency_cycles: latency of a dependent FMA chain.
    :param mlp: maximum outstanding cache-line misses (memory-level
        parallelism).  Drives single-core memory bandwidth (Fig. 5a).
    :param rob_entries: out-of-order window size (reorder buffer); used as
        a mild ILP-extraction proxy by the timing model.
    :param branch_mispredict_cycles: misprediction penalty.
    :param smt_threads: hardware threads per core (2 on the i7).
    """

    name: str
    isa: ISA
    issue_width: int
    fp64_flops_per_cycle: float
    fma_latency_cycles: int
    mlp: float
    rob_entries: int
    branch_mispredict_cycles: int
    smt_threads: int = 1

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        if self.fp64_flops_per_cycle <= 0:
            raise ValueError("peak FLOPs/cycle must be positive")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")

    def peak_gflops(self, freq_ghz: float) -> float:
        """Peak FP64 GFLOPS of one core at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        return self.fp64_flops_per_cycle * freq_ghz

    def ilp_efficiency(self) -> float:
        """Fraction of peak issue sustained on dependent scalar code.

        Modelled as a saturating function of the out-of-order window: a
        56-entry A9 window extracts less ILP than the 128-entry A15 or the
        168-entry Sandy Bridge ROB.  Calibrated so the ordering (and rough
        spacing) matches the paper's measured single-core gaps.
        """
        return min(1.0, 0.42 + 0.10 * (self.rob_entries / 56.0))

    def dependent_fma_gflops(self, freq_ghz: float) -> float:
        """Throughput of a single dependent FMA chain (latency-bound)."""
        return 2.0 * freq_ghz / self.fma_latency_cycles

    def issue_cycles(self, mix: InstructionMix) -> float:
        """Cycles to issue an instruction mix at best-case throughput.

        The binding constraints are total issue slots and FP-unit
        throughput; divides are unpipelined and serialise.
        """
        total_ops = mix.total()
        if total_ops == 0:
            return 0.0
        issue_bound = total_ops / self.issue_width
        fp_ops = (
            mix.counts.get(OpClass.FP_FMA, 0.0) * 2.0
            + mix.counts.get(OpClass.FP_ADD, 0.0)
            + mix.counts.get(OpClass.FP_MUL, 0.0)
        )
        fp_bound = fp_ops / self.fp64_flops_per_cycle
        div_bound = mix.counts.get(OpClass.FP_DIV, 0.0) * 18.0
        return max(issue_bound, fp_bound) + div_bound


# Canonical core models used by the catalog -------------------------------

def cortex_a9() -> CoreModel:
    """ARM Cortex-A9 (Tegra 2 / Tegra 3)."""
    from repro.arch.isa import ARMV7

    return CoreModel(
        name="Cortex-A9",
        isa=ARMV7,
        issue_width=2,
        fp64_flops_per_cycle=1.0,  # one FMA every two cycles
        fma_latency_cycles=8,
        mlp=2.8,
        rob_entries=56,
        branch_mispredict_cycles=12,
    )


def cortex_a15() -> CoreModel:
    """ARM Cortex-A15 (Exynos 5250)."""
    from repro.arch.isa import ARMV7

    return CoreModel(
        name="Cortex-A15",
        isa=ARMV7,
        issue_width=3,
        fp64_flops_per_cycle=2.0,  # fully-pipelined FMA
        fma_latency_cycles=9,
        mlp=6.0,
        rob_entries=128,
        branch_mispredict_cycles=15,
    )


def sandy_bridge() -> CoreModel:
    """Intel Sandy Bridge (Core i7-2760QM)."""
    from repro.arch.isa import X86_64

    return CoreModel(
        name="SandyBridge",
        isa=X86_64,
        issue_width=4,
        fp64_flops_per_cycle=8.0,  # AVX 4-wide add + 4-wide mul
        fma_latency_cycles=8,  # add(3)+mul(5) chain equivalent
        mlp=10.0,
        rob_entries=168,
        branch_mispredict_cycles=15,
        smt_threads=2,
    )


def cortex_a15_armv8() -> CoreModel:
    """Hypothetical ARMv8 core with the Cortex-A15 micro-architecture.

    Section 3.1.2 of the paper: ARMv8 brings FP64 into the NEON SIMD unit,
    "double the FP-64 performance at the same frequency" with the same
    micro-architecture.  Used for the Figure 2b projection point (4-core
    ARMv8 @ 2 GHz) and the A3 ablation.
    """
    from repro.arch.isa import ARMV8

    return CoreModel(
        name="Cortex-A15/ARMv8",
        isa=ARMV8,
        issue_width=3,
        fp64_flops_per_cycle=4.0,
        fma_latency_cycles=9,
        mlp=6.0,
        rob_entries=128,
        branch_mispredict_cycles=15,
    )
