"""Concrete platform instances — Table 1 of the paper.

Every number either comes straight from Table 1 (core counts, frequencies,
cache sizes, memory channels/width/frequency, peak bandwidth, DRAM
size/type, Ethernet interfaces, NIC attachment) or is a calibrated model
constant documented inline.  Peak FP64 GFLOPS are *derived* from the core
model and frequency and must equal the Table 1 values (2.0 / 5.2 / 6.8 /
76.8) — the test suite asserts this.

Power-model calibration (single core @ 1 GHz, whole-platform wall power)
targets the paper's energy-per-iteration figures given the reference
workload duration implied by them (see ``timing/calibration.py``):

=============  ============  ==================  ================
platform       E/iter (J)    implied time (s)    implied power (W)
=============  ============  ==================  ================
Tegra 2        23.93         2.99                ~8.0
Tegra 3        19.62         2.74  (1.09x)       ~7.15
Exynos 5250    16.95         2.30  (1.30x)       ~7.35
Core i7        28.57         1.15  (2.60x)       ~24.8
=============  ============  ==================  ================
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.cache import CacheConfig
from repro.arch.core_model import (
    cortex_a9,
    cortex_a15,
    cortex_a15_armv8,
    sandy_bridge,
)
from repro.arch.dram import MemorySystem
from repro.arch.dvfs import DVFSTable, OperatingPoint
from repro.arch.power import PowerModel
from repro.arch.soc import BoardInfo, GPUInfo, Platform, SoC

# Price points quoted in Section 1, footnote 5 (USD).
XEON_E5_2670_PRICE_USD = 1552.0
TEGRA3_VOLUME_PRICE_USD = 21.0
ATOM_S1260_PRICE_USD = 64.0

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@lru_cache(maxsize=None)
def tegra2() -> Platform:
    """NVIDIA Tegra 2 on the SECO Q7 module + carrier (Tibidabo node)."""
    soc = SoC(
        name="Tegra2",
        core=cortex_a9(),
        n_cores=2,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 32, 4, 4),
            CacheConfig("L2", 1 * MIB, 32, 8, 25, shared=True),
        ),
        memory=MemorySystem(
            channels=1,
            width_bits=32,
            freq_mhz=333.0,
            peak_bandwidth_gbs=2.6,
            latency_ns=150.0,
            stream_efficiency=0.62,  # Fig. 5 multicore: 62% of peak
        ),
        power=PowerModel(
            board_watts=6.2,
            soc_static_watts=0.8,
            core_active_watts=1.0,
            nominal_freq_ghz=1.0,
            vmin=0.825,
            vmax=1.10,
            fmin_ghz=0.456,
            fmax_ghz=1.0,
            mem_dynamic_watts=0.4,
        ),
        dvfs=DVFSTable(
            [
                OperatingPoint(0.456, 0.825),
                OperatingPoint(0.608, 0.875),
                OperatingPoint(0.760, 0.925),
                OperatingPoint(0.912, 1.000),
                OperatingPoint(1.000, 1.100),
            ]
        ),
        l2_bw_bytes_per_cycle=2.0,
        gpu=GPUInfo("ULP GeForce", programmable=False),
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="SECO Q7 module + carrier",
            dram_bytes=1 * GIB,
            dram_type="DDR2-667",
            ethernet_interfaces=("1GbE", "100Mb"),
            nic_attachment="pcie",
            has_heatsink=False,
            root_filesystem="nfs",
        ),
        calibration_notes=(
            "Baseline platform; 23.93 J/iter and 8 W wall @1 GHz single-core."
        ),
    )


@lru_cache(maxsize=None)
def tegra3() -> Platform:
    """NVIDIA Tegra 3 on the SECO CARMA kit."""
    soc = SoC(
        name="Tegra3",
        core=cortex_a9(),
        n_cores=4,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 32, 4, 4),
            CacheConfig("L2", 1 * MIB, 32, 8, 23, shared=True),
        ),
        memory=MemorySystem(
            channels=1,
            width_bits=32,
            freq_mhz=750.0,
            peak_bandwidth_gbs=5.86,
            latency_ns=130.0,  # improved memory controller vs Tegra 2
            stream_efficiency=0.27,  # Fig. 5: only 27% of peak sustained
        ),
        power=PowerModel(
            board_watts=5.4,
            soc_static_watts=0.7,
            core_active_watts=1.05,
            nominal_freq_ghz=1.0,
            vmin=0.850,
            vmax=1.20,
            fmin_ghz=0.51,
            fmax_ghz=1.3,
            mem_dynamic_watts=0.5,
        ),
        dvfs=DVFSTable(
            [
                OperatingPoint(0.51, 0.850),
                OperatingPoint(0.62, 0.900),
                OperatingPoint(0.86, 0.975),
                OperatingPoint(1.00, 1.050),
                OperatingPoint(1.20, 1.125),
                OperatingPoint(1.30, 1.200),
            ]
        ),
        l2_bw_bytes_per_cycle=2.3,
        gpu=GPUInfo("ULP GeForce", programmable=False),
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="SECO CARMA",
            dram_bytes=2 * GIB,
            dram_type="DDR3L-1600",
            ethernet_interfaces=("1GbE",),
            nic_attachment="pcie",
            has_heatsink=False,
            root_filesystem="nfs",
        ),
        calibration_notes=(
            "9% faster than Tegra 2 @1 GHz (memory controller); 19.62 J/iter."
        ),
        unit_price_usd=TEGRA3_VOLUME_PRICE_USD,
    )


@lru_cache(maxsize=None)
def exynos5250() -> Platform:
    """Samsung Exynos 5250 (Exynos 5 Dual) on the Arndale 5 board."""
    soc = SoC(
        name="Exynos5250",
        core=cortex_a15(),
        n_cores=2,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 64, 2, 4),
            CacheConfig("L2", 1 * MIB, 64, 16, 21, shared=True),
        ),
        memory=MemorySystem(
            channels=2,
            width_bits=32,
            freq_mhz=800.0,
            peak_bandwidth_gbs=12.8,
            latency_ns=110.0,
            stream_efficiency=0.52,  # Fig. 5: 52% of peak
        ),
        power=PowerModel(
            board_watts=5.2,
            soc_static_watts=0.9,
            core_active_watts=1.25,
            nominal_freq_ghz=1.0,
            vmin=0.900,
            vmax=1.25,
            fmin_ghz=0.6,
            fmax_ghz=1.7,
            mem_dynamic_watts=0.6,
        ),
        dvfs=DVFSTable(
            [
                OperatingPoint(0.6, 0.900),
                OperatingPoint(0.8, 0.950),
                OperatingPoint(1.0, 1.000),
                OperatingPoint(1.2, 1.063),
                OperatingPoint(1.4, 1.125),
                OperatingPoint(1.7, 1.250),
            ]
        ),
        l2_bw_bytes_per_cycle=2.7,
        gpu=GPUInfo(
            "Mali-T604",
            programmable=True,
            api="OpenCL",
            usable_for_compute=False,  # no optimised driver at the time
        ),
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="Arndale 5",
            dram_bytes=2 * GIB,
            dram_type="DDR3L-1600",
            ethernet_interfaces=("100Mb",),
            nic_attachment="usb3",  # 1GbE adapter hangs off USB 3.0
            has_heatsink=False,
            root_filesystem="nfs",
        ),
        calibration_notes=(
            "30% faster than Tegra 2 @1 GHz; 16.95 J/iter; ~2x slower than i7."
        ),
    )


@lru_cache(maxsize=None)
def core_i7_2760qm() -> Platform:
    """Intel Core i7-2760QM in a Dell Latitude E6420 laptop (screen off)."""
    soc = SoC(
        name="Corei7-2760QM",
        core=sandy_bridge(),
        n_cores=4,
        threads_per_core=2,
        cache_levels=(
            CacheConfig("L1D", 32 * KIB, 64, 8, 4),
            CacheConfig("L2", 256 * KIB, 64, 8, 12),
            CacheConfig("L3", 6 * MIB, 64, 12, 30, shared=True),
        ),
        memory=MemorySystem(
            channels=2,
            width_bits=64,
            freq_mhz=800.0,
            peak_bandwidth_gbs=25.6,
            latency_ns=65.0,
            stream_efficiency=0.57,  # Fig. 5: 57% of peak
        ),
        power=PowerModel(
            board_watts=18.0,
            soc_static_watts=3.5,
            core_active_watts=3.3,
            nominal_freq_ghz=1.0,
            vmin=0.75,
            vmax=1.10,
            fmin_ghz=0.8,
            fmax_ghz=2.4,
            mem_dynamic_watts=2.0,
        ),
        dvfs=DVFSTable(
            [
                OperatingPoint(0.8, 0.75),
                OperatingPoint(1.2, 0.84),
                OperatingPoint(1.6, 0.93),
                OperatingPoint(2.0, 1.01),
                OperatingPoint(2.4, 1.10),
            ]
        ),
        l2_bw_bytes_per_cycle=5.2,
        gpu=GPUInfo("Intel HD Graphics 3000", programmable=False),
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="Dell Latitude E6420",
            dram_bytes=8 * GIB,
            dram_type="DDR3-1133",
            ethernet_interfaces=("1GbE",),
            nic_attachment="onboard",
            has_heatsink=True,
            root_filesystem="disk",
        ),
        calibration_notes=(
            "28.57 J/iter @1 GHz single-core; 3x Exynos at max frequency."
        ),
    )


@lru_cache(maxsize=None)
def armv8_projection() -> Platform:
    """Hypothetical 4-core ARMv8 @ 2 GHz (Figure 2b projection point).

    Same Cortex-A15 micro-architecture with FP64 NEON (2x FLOPs/cycle):
    4 cores x 4 FLOPs/cycle x 2 GHz = 32 GFLOPS peak.
    """
    base = exynos5250()
    soc = SoC(
        name="ARMv8-4core-2GHz",
        core=cortex_a15_armv8(),
        n_cores=4,
        cache_levels=base.soc.cache_levels,
        memory=MemorySystem(
            channels=2,
            width_bits=32,
            freq_mhz=933.0,
            peak_bandwidth_gbs=14.9,
            latency_ns=105.0,
            stream_efficiency=0.55,
        ),
        power=PowerModel(
            board_watts=5.2,
            soc_static_watts=1.2,
            core_active_watts=1.3,
            nominal_freq_ghz=1.0,
            vmin=0.900,
            vmax=1.25,
            fmin_ghz=0.6,
            fmax_ghz=2.0,
            mem_dynamic_watts=0.7,
        ),
        dvfs=DVFSTable(
            [
                OperatingPoint(0.6, 0.900),
                OperatingPoint(1.0, 1.000),
                OperatingPoint(1.5, 1.120),
                OperatingPoint(2.0, 1.250),
            ]
        ),
        l2_bw_bytes_per_cycle=3.0,
        gpu=None,
    )
    return Platform(
        soc=soc,
        board=BoardInfo(
            name="ARMv8 projection",
            dram_bytes=4 * GIB,
            dram_type="DDR3-1866",
            ethernet_interfaces=("1GbE",),
            nic_attachment="pcie",
        ),
        calibration_notes="Projection, Section 3.1.2: 2x FP64 per cycle vs A15.",
    )


#: The four evaluated platforms, keyed by short name (paper order).
PLATFORMS: dict[str, "Platform"] = {}


def _register() -> None:
    for factory in (tegra2, tegra3, exynos5250, core_i7_2760qm):
        p = factory()
        PLATFORMS[p.name] = p


_register()


def get_platform(name: str) -> Platform:
    """Look up a platform by SoC name (case-insensitive)."""
    for key, platform in PLATFORMS.items():
        if key.lower() == name.lower():
            return platform
    if name.lower() in ("armv8", "armv8-4core-2ghz"):
        return armv8_projection()
    raise KeyError(
        f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
    )
