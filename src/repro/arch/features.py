"""HPC-readiness feature analysis — Section 6.3 as an executable model.

The paper closes with a checklist of what mobile SoCs lack before "a
production system is viable": ECC memory, fast I/O for HPC interconnects,
hardware network protocol support, a 64-bit address space, and a thermal
package — and points at server-class ARM SoCs (Calxeda EnergyCore,
Applied Micro X-Gene, TI KeyStone II) that already integrate several of
them.  This module expresses that checklist over platform models so the
gap can be *computed*, and so the server-SoC comparators of Section 2
slot into the same analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.soc import Platform
from repro.net.nic import attachment_for


class Feature(enum.Enum):
    """The Section 6.3 readiness checklist."""

    ECC_MEMORY = "ECC-protected memory"
    FAST_INTERCONNECT_IO = "I/O able to carry 10GbE+/InfiniBand"
    INTEGRATED_NIC = "integrated network interface (no USB/discrete hop)"
    PROTOCOL_OFFLOAD = "hardware network-protocol support"
    ADDRESS_64BIT = ">4GB per-process address space"
    SERVER_THERMAL_PACKAGE = "thermal package for sustained load"


#: Minimum sustained I/O bandwidth (Gb/s) considered interconnect-class.
INTERCONNECT_IO_GBPS = 10.0

#: Per-attachment sustainable I/O bandwidth (Gb/s) of the era's mobile
#: interfaces (Section 6.3: USB 3.0 is 5 Gb/s; MIPI/SATA3 6 Gb/s).
ATTACHMENT_IO_GBPS = {"usb3": 5.0, "pcie": 8.0, "onboard": 20.0}


@dataclass(frozen=True)
class FeatureAssessment:
    """Outcome of evaluating one platform against the checklist."""

    platform: str
    supported: frozenset[Feature]
    missing: frozenset[Feature]

    @property
    def ready(self) -> bool:
        """HPC-production-ready in the Section 6.3 sense."""
        return not self.missing

    @property
    def readiness_score(self) -> float:
        """Fraction of the checklist satisfied."""
        total = len(self.supported) + len(self.missing)
        return len(self.supported) / total if total else 0.0


def _has_protocol_offload(platform: Platform) -> bool:
    # Modelled as a board/SoC annotation; mobile SoCs of the era: none.
    return getattr(platform, "protocol_offload", False) or (
        "KeyStone" in platform.name
    )


def assess(platform: Platform, thermal_ok: bool | None = None) -> FeatureAssessment:
    """Evaluate a platform against the Section 6.3 checklist.

    :param thermal_ok: override for the thermal-package criterion
        (defaults to the board's ``has_heatsink``).
    """
    supported: set[Feature] = set()
    missing: set[Feature] = set()

    def mark(feature: Feature, ok: bool) -> None:
        (supported if ok else missing).add(feature)

    soc = platform.soc
    mark(Feature.ECC_MEMORY, soc.memory.ecc)
    io_gbps = ATTACHMENT_IO_GBPS.get(
        platform.board.nic_attachment.lower(), 0.0
    )
    mark(Feature.FAST_INTERCONNECT_IO, io_gbps >= INTERCONNECT_IO_GBPS)
    nic = attachment_for(platform.board.nic_attachment)
    mark(Feature.INTEGRATED_NIC, nic.name == "onboard")
    mark(Feature.PROTOCOL_OFFLOAD, _has_protocol_offload(platform))
    mark(Feature.ADDRESS_64BIT, soc.core.isa.address_bits > 32)
    thermal = (
        platform.board.has_heatsink if thermal_ok is None else thermal_ok
    )
    mark(Feature.SERVER_THERMAL_PACKAGE, thermal)

    return FeatureAssessment(
        platform=platform.name,
        supported=frozenset(supported),
        missing=frozenset(missing),
    )


def readiness_matrix(platforms: list[Platform]) -> dict[str, dict[str, bool]]:
    """Platform x feature boolean matrix (rendered by the analysis layer)."""
    out: dict[str, dict[str, bool]] = {}
    for p in platforms:
        a = assess(p)
        out[p.name] = {f.value: (f in a.supported) for f in Feature}
    return out


def gap_report(platform: Platform) -> list[str]:
    """Human-readable list of what keeps a platform out of production
    HPC — the Section 6.3 conclusion for that platform."""
    a = assess(platform)
    if a.ready:
        return [f"{platform.name}: production-ready by the Section 6.3 bar"]
    return [
        f"{platform.name} is missing: {feature.value}"
        for feature in sorted(a.missing, key=lambda f: f.name)
    ]
