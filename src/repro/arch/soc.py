"""SoC and platform aggregates.

A :class:`SoC` combines a core model, core count, cache hierarchy
configuration, memory system, power model and DVFS table — the "Table 1
row" of the paper.  A :class:`Platform` wraps the SoC in its developer
board/laptop context (DRAM size/type, Ethernet interfaces, NIC
attachment), since the paper evaluates whole developer kits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cache import CacheConfig, CacheHierarchy
from repro.arch.core_model import CoreModel
from repro.arch.dram import MemorySystem
from repro.arch.dvfs import DVFSTable
from repro.arch.power import PowerModel


@dataclass(frozen=True)
class GPUInfo:
    """Integrated GPU descriptor.

    The Tegra 2/3 ULP GeForce is graphics-only; the Exynos Mali-T604
    supports OpenCL but had no optimised driver at the time, so the paper
    excludes every GPU from the evaluation (Section 3).  We carry the
    descriptor so that exclusion is an explicit, testable decision.
    """

    name: str
    programmable: bool
    api: str | None = None
    usable_for_compute: bool = False


@dataclass(frozen=True)
class BoardInfo:
    """Developer kit / laptop context around the SoC."""

    name: str
    dram_bytes: int
    dram_type: str
    ethernet_interfaces: tuple[str, ...]
    nic_attachment: str  # "pcie", "usb3", "onboard"
    has_heatsink: bool = False
    root_filesystem: str = "nfs"  # dev kits boot over NFS; laptop has disk


@dataclass(frozen=True)
class SoC:
    """A system-on-chip: cores + caches + memory controller + power.

    ``l2_bw_bytes_per_cycle`` is the per-core sustained bandwidth into the
    last private/shared on-chip cache level, in bytes per core cycle.  For
    the cache-resident working sets of the micro-kernel suite this — not
    DRAM — is the memory roof, which is why the paper observes performance
    scaling linearly with CPU frequency (Section 3.1.1).
    """

    name: str
    core: CoreModel
    n_cores: int
    cache_levels: tuple[CacheConfig, ...]
    memory: MemorySystem
    power: PowerModel
    dvfs: DVFSTable
    l2_bw_bytes_per_cycle: float = 4.0
    gpu: GPUInfo | None = None
    threads_per_core: int = 1

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.threads_per_core <= 0:
            raise ValueError("threads_per_core must be positive")

    @property
    def n_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    @property
    def max_freq_ghz(self) -> float:
        return self.dvfs.fmax

    def peak_gflops(self, freq_ghz: float | None = None) -> float:
        """Peak FP64 GFLOPS of the whole SoC (all cores, no GPU)."""
        f = self.max_freq_ghz if freq_ghz is None else freq_ghz
        return self.n_cores * self.core.peak_gflops(f)

    def build_cache_hierarchy(
        self, freq_ghz: float | None = None
    ) -> CacheHierarchy:
        """Instantiate a fresh functional cache hierarchy for this SoC."""
        f = self.max_freq_ghz if freq_ghz is None else freq_ghz
        return CacheHierarchy(
            self.cache_levels, self.memory.dram_latency_cycles(f)
        )

    def last_level_cache_bytes(self) -> int:
        return self.cache_levels[-1].size_bytes

    @property
    def llc_shared(self) -> bool:
        """Whether the last cache level is shared between cores."""
        return self.cache_levels[-1].shared

    @property
    def l2_shared(self) -> bool:
        """Whether the L2 (the per-core bandwidth conduit) is shared.

        The Tegra/Exynos SoCs share one L2 between all cores, so their
        aggregate on-chip bandwidth saturates with thread count; Sandy
        Bridge has private per-core L2s and scales linearly."""
        level = self.cache_levels[1] if len(self.cache_levels) > 1 else self.cache_levels[0]
        return level.shared

    def l2_bandwidth_gbs(self, freq_ghz: float, cores: int = 1) -> float:
        """Aggregate on-chip cache bandwidth at ``freq_ghz`` for ``cores``
        active cores (GB/s).  A shared LLC saturates; private per-core
        levels (Sandy Bridge) scale linearly.  The scaling constants live
        in :mod:`repro.timing.calibration`."""
        from repro.timing import calibration

        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not (1 <= cores <= self.n_cores):
            raise ValueError("cores out of range")
        if cores == 1:
            scale = 1.0
        elif self.l2_shared:
            scale = min(
                1.0 + calibration.SHARED_L2_CORE_SCALING * (cores - 1),
                calibration.SHARED_L2_SCALING_CAP,
            )
        else:
            scale = float(cores)
        return self.l2_bw_bytes_per_cycle * freq_ghz * scale


@dataclass(frozen=True)
class Platform:
    """A complete evaluated platform: SoC + developer kit context."""

    soc: SoC
    board: BoardInfo
    #: Free-form calibration notes (which paper numbers anchored it).
    calibration_notes: str = ""
    #: Price in USD where the paper quotes one (Section 1 footnote 5).
    unit_price_usd: float | None = None
    #: Hardware network-protocol offload engine (TI KeyStone II class,
    #: Section 4.1/6.3); absent from every mobile SoC of the era.
    protocol_offload: bool = False

    @property
    def name(self) -> str:
        return self.soc.name

    def peak_gflops(self, freq_ghz: float | None = None) -> float:
        return self.soc.peak_gflops(freq_ghz)

    def describe(self) -> dict[str, object]:
        """Table 1-style summary row."""
        soc = self.soc
        return {
            "SoC": soc.name,
            "Architecture": soc.core.name,
            "Max. frequency (GHz)": soc.max_freq_ghz,
            "Number of cores": soc.n_cores,
            "Number of threads": soc.n_threads,
            "FP-64 GFLOPS": round(soc.peak_gflops(), 1),
            "L1 (I/D)": f"{soc.cache_levels[0].size_bytes // 1024}K private",
            "L2": _fmt_cache(soc.cache_levels[1])
            if len(soc.cache_levels) > 1
            else "-",
            "L3": _fmt_cache(soc.cache_levels[2])
            if len(soc.cache_levels) > 2
            else "-",
            "Memory channels": soc.memory.channels,
            "Channel width (bits)": soc.memory.width_bits,
            "Memory freq (MHz)": soc.memory.freq_mhz,
            "Peak bandwidth (GB/s)": soc.memory.peak_bandwidth_gbs,
            "Developer kit": self.board.name,
            "DRAM": f"{self.board.dram_bytes // 2**30} GB {self.board.dram_type}",
            "Ethernet": ", ".join(self.board.ethernet_interfaces),
        }


def _fmt_cache(cfg: CacheConfig) -> str:
    size = cfg.size_bytes
    label = (
        f"{size // 2**20}M" if size >= 2**20 else f"{size // 2**10}K"
    )
    return f"{label} {'shared' if cfg.shared else 'private'}"
