"""DVFS operating points and frequency governors.

The paper's kernels for Linux were "tuned for HPC by ... setting the
default DVFS policy to performance" (Section 5), and Figures 3 and 4 sweep
the CPU frequency across each platform's operating points.  ATLAS
auto-tuning additionally required pinning the frequency to the maximum
(Section 5) — the :class:`Governor` API supports exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class OperatingPoint:
    """One voltage/frequency pair of a DVFS table."""

    freq_ghz: float
    voltage: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.voltage <= 0:
            raise ValueError("frequency and voltage must be positive")


class DVFSTable:
    """An ordered set of operating points for one platform."""

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if not points:
            raise ValueError("DVFS table cannot be empty")
        self.points = sorted(points, key=lambda p: p.freq_ghz)
        freqs = [p.freq_ghz for p in self.points]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in DVFS table")

    @property
    def fmin(self) -> float:
        return self.points[0].freq_ghz

    @property
    def fmax(self) -> float:
        return self.points[-1].freq_ghz

    def frequencies(self) -> list[float]:
        """All frequencies (GHz), ascending."""
        return [p.freq_ghz for p in self.points]

    def voltage_at(self, freq_ghz: float) -> float:
        """Voltage of the lowest operating point able to run ``freq_ghz``."""
        for p in self.points:
            if p.freq_ghz >= freq_ghz - 1e-12:
                return p.voltage
        raise ValueError(
            f"{freq_ghz} GHz exceeds the table maximum {self.fmax} GHz"
        )

    def nearest(self, freq_ghz: float) -> OperatingPoint:
        """The operating point closest in frequency to ``freq_ghz``."""
        return min(self.points, key=lambda p: abs(p.freq_ghz - freq_ghz))


class GovernorPolicy(enum.Enum):
    """Linux cpufreq-style governor policies."""

    PERFORMANCE = "performance"  # always fmax (the paper's HPC setting)
    POWERSAVE = "powersave"  # always fmin
    ONDEMAND = "ondemand"  # utilisation-driven


class Governor:
    """Selects an operating point given a utilisation sample."""

    def __init__(
        self,
        table: DVFSTable,
        policy: GovernorPolicy = GovernorPolicy.PERFORMANCE,
        up_threshold: float = 0.8,
    ) -> None:
        if not (0.0 < up_threshold <= 1.0):
            raise ValueError("up_threshold must be in (0, 1]")
        self.table = table
        self.policy = policy
        self.up_threshold = up_threshold
        self._current = (
            table.points[-1]
            if policy is GovernorPolicy.PERFORMANCE
            else table.points[0]
        )

    @property
    def current(self) -> OperatingPoint:
        return self._current

    def pin(self, freq_ghz: float) -> OperatingPoint:
        """Pin the frequency (userspace governor), as required for ATLAS
        auto-tuning in Section 5.  Raises if the table lacks the point."""
        for p in self.table.points:
            if abs(p.freq_ghz - freq_ghz) < 1e-9:
                self._current = p
                return p
        raise ValueError(f"no operating point at {freq_ghz} GHz")

    def step(self, utilisation: float) -> OperatingPoint:
        """Advance one governor interval with the given utilisation."""
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be in [0, 1]")
        if self.policy is GovernorPolicy.PERFORMANCE:
            self._current = self.table.points[-1]
        elif self.policy is GovernorPolicy.POWERSAVE:
            self._current = self.table.points[0]
        else:  # ONDEMAND: jump to max above threshold, else step down
            pts = self.table.points
            idx = pts.index(self._current)
            if utilisation >= self.up_threshold:
                self._current = pts[-1]
            elif idx > 0 and utilisation < self.up_threshold / 2:
                self._current = pts[idx - 1]
        return self._current
