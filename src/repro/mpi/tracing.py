"""Compatibility shim — the message tracer moved to the unified
observability layer.

The Paraver-style per-message capture/analysis now lives in
:mod:`repro.obs.messages`, next to the span recorder
(:mod:`repro.obs.recorder`), the exporters (:mod:`repro.obs.export`)
and the deterministic-replay harness (:mod:`repro.obs.replay`).  This
module re-exports the public names so existing imports keep working;
prefer importing from :mod:`repro.obs.messages` in new code.

Importing this module emits a :class:`DeprecationWarning`; the shim
will be removed once nothing in-tree or downstream imports it (it is
kept for one more release cycle).
"""

import warnings

from repro.obs.messages import (
    MessageRecord,
    TraceAnalysis,
    Tracer,
    traced_world,
)

warnings.warn(
    "repro.mpi.tracing is deprecated; import from repro.obs.messages "
    "instead (this shim will be removed in a future release)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["MessageRecord", "TraceAnalysis", "Tracer", "traced_world"]
