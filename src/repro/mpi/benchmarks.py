"""Intel MPI Benchmarks-style ping-pong (Section 4.1 / Figure 7).

"The ping-pong test measures the time and bandwidth to exchange one
message between two MPI processes."  We run it on the discrete-event
MPI, so what is measured is the full simulated path (sender occupancy,
stack latency, per-byte cost, rendezvous) — the same path application
messages take.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.api import MPIWorld, RankContext, UniformNetwork
from repro.net.protocol import ProtocolStack

#: Message sizes of the latency panel of Figure 7 (bytes).
LATENCY_SIZES = (0, 1, 2, 4, 8, 16, 32, 64)

#: Message sizes of the bandwidth panel (2^0 .. 2^24 bytes).
BANDWIDTH_SIZES = tuple(1 << i for i in range(0, 25, 2))


@dataclass(frozen=True)
class PingPongResult:
    """One (message size, repetitions) ping-pong measurement."""

    nbytes: int
    repetitions: int
    half_round_trip_us: float

    @property
    def latency_us(self) -> float:
        return self.half_round_trip_us

    @property
    def bandwidth_mbs(self) -> float:
        """Payload bandwidth, MB/s (bytes per µs)."""
        if self.nbytes == 0:
            return 0.0
        return self.nbytes / self.half_round_trip_us


def _pingpong_rank(
    ctx: RankContext, nbytes: int, reps: int, payload: np.ndarray
):
    peer = 1 - ctx.rank
    for _ in range(reps):
        if ctx.rank == 0:
            yield from ctx.send(peer, payload)
            yield from ctx.recv(peer)
        else:
            yield from ctx.recv(peer)
            yield from ctx.send(peer, payload)
    return ctx.now


def ping_pong(
    stack: ProtocolStack, nbytes: int, repetitions: int = 10
) -> PingPongResult:
    """Run a two-rank ping-pong over ``stack`` and report the half
    round-trip time (the IMB latency convention)."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    world = MPIWorld(2, UniformNetwork(stack))
    payload = np.zeros(max(1, nbytes // 8), dtype=np.float64)[
        : max(0, nbytes // 8)
    ]
    # Use a raw bytes buffer so odd sizes are exact.
    buf = bytes(nbytes)
    result = world.run(_pingpong_rank, nbytes, repetitions, buf)
    total = result.makespan_s * 1e6  # µs
    return PingPongResult(
        nbytes=nbytes,
        repetitions=repetitions,
        half_round_trip_us=total / (2 * repetitions),
    )


def latency_curve(
    stack: ProtocolStack, sizes: tuple[int, ...] = LATENCY_SIZES
) -> dict[int, float]:
    """Latency (µs) per message size — Figure 7 panels (a)-(c)."""
    return {s: ping_pong(stack, s).latency_us for s in sizes}


def bandwidth_curve(
    stack: ProtocolStack, sizes: tuple[int, ...] = BANDWIDTH_SIZES
) -> dict[int, float]:
    """Effective bandwidth (MB/s) per message size — panels (d)-(f)."""
    return {s: ping_pong(stack, s).bandwidth_mbs for s in sizes if s > 0}


# ---------------------------------------------------------------------------
# Additional IMB-style benchmarks (the suite the paper used contains
# PingPong, SendRecv, Exchange and the collective timings).
# ---------------------------------------------------------------------------

def _sendrecv_rank(ctx: RankContext, nbytes: int, reps: int):
    """IMB SendRecv: a periodic chain; every rank sends right while
    receiving from the left, both posted concurrently."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    buf = bytes(nbytes)
    for _ in range(reps):
        yield from ctx.exchange([(right, buf, 80)], [(left, 80)])
    return ctx.now


def sendrecv_benchmark(
    stack: ProtocolStack, n_ranks: int, nbytes: int, repetitions: int = 10
) -> float:
    """IMB SendRecv: average time per iteration (µs) over the ring."""
    if n_ranks < 2:
        raise ValueError("SendRecv needs at least two ranks")
    world = MPIWorld(n_ranks, UniformNetwork(stack))
    result = world.run(_sendrecv_rank, nbytes, repetitions)
    return result.makespan_s * 1e6 / repetitions


def _exchange_rank(ctx: RankContext, nbytes: int, reps: int):
    """IMB Exchange: both neighbours, both directions, every iteration."""
    right = (ctx.rank + 1) % ctx.size
    left = (ctx.rank - 1) % ctx.size
    buf = bytes(nbytes)
    for _ in range(reps):
        yield from ctx.exchange(
            [(right, buf, 81), (left, buf, 82)],
            [(left, 81), (right, 82)],
        )
    return ctx.now


def exchange_benchmark(
    stack: ProtocolStack, n_ranks: int, nbytes: int, repetitions: int = 10
) -> float:
    """IMB Exchange: average time per iteration (µs)."""
    if n_ranks < 2:
        raise ValueError("Exchange needs at least two ranks")
    world = MPIWorld(n_ranks, UniformNetwork(stack))
    result = world.run(_exchange_rank, nbytes, repetitions)
    return result.makespan_s * 1e6 / repetitions


def allreduce_benchmark(
    stack: ProtocolStack, n_ranks: int, nbytes: int = 8, repetitions: int = 5
) -> float:
    """IMB Allreduce: average time per operation (µs)."""
    from repro.mpi.collectives import allreduce

    payload = np.zeros(max(1, nbytes // 8))

    def rank_fn(ctx):
        for _ in range(repetitions):
            yield from allreduce(ctx, payload)
        return ctx.now

    world = MPIWorld(n_ranks, UniformNetwork(stack))
    result = world.run(rank_fn)
    return result.makespan_s * 1e6 / repetitions
