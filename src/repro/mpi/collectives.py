"""Collective operations built from point-to-point messages.

The classical algorithms (also what MPICH2/OpenMPI — the stacks deployed
on Tibidabo, Section 5 — use at these scales):

* broadcast / reduce: binomial tree, ``ceil(log2 p)`` rounds;
* allreduce / barrier: recursive doubling (with a fold-in pre/post phase
  for non-power-of-two rank counts);
* allgather: ring;
* gather / scatter: linear to/from the root.

Because each round is made of ordinary simulated messages, collective
cost automatically reflects the protocol stack under test — e.g. a
barrier over TCP/IP on Tegra 2 costs ~log2(p) x 100 µs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from repro.mpi.api import RankContext

_COLL_TAG_BASE = 1 << 20


def _op_apply(op: Callable[[Any, Any], Any], a: Any, b: Any) -> Any:
    return op(a, b)


def bcast(ctx: RankContext, obj: Any, root: int = 0, tag: int = 0) -> Generator:
    """Binomial-tree broadcast; every rank returns the object."""
    size, rank = ctx.size, ctx.rank
    vrank = (rank - root) % size  # virtual rank with root at 0
    t = _COLL_TAG_BASE + tag
    mask = 1
    # A non-root rank receives in the round given by its highest set bit
    # (in round `mask`, every rank with vrank < mask sends to vrank+mask).
    if vrank != 0:
        recv_mask = 1
        while recv_mask * 2 <= vrank:
            recv_mask <<= 1
        src = (vrank - recv_mask + root) % size
        msg = yield from ctx.recv(src, t)
        obj = msg.payload
        mask = recv_mask << 1
    # Forward to children in the remaining rounds.  ``isend`` + a bare
    # yield is ``send`` minus the per-forward generator frame — the
    # event sequence (and so the schedule) is identical.
    while mask < size:
        if vrank < mask and vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield ctx.isend(dst, obj, t)
        mask <<= 1
    return obj


def reduce(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any] = np.add,
    root: int = 0,
    tag: int = 1,
) -> Generator:
    """Binomial-tree reduction; only the root returns the result."""
    size, rank = ctx.size, ctx.rank
    vrank = (rank - root) % size
    t = _COLL_TAG_BASE + tag
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = (vrank - mask + root) % size
            yield ctx.isend(dst, acc, t)
            return None
        partner = vrank + mask
        if partner < size:
            msg = yield from ctx.recv((partner + root) % size, t)
            acc = _op_apply(op, acc, msg.payload)
        mask <<= 1
    return acc


def allreduce(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any] = np.add,
    tag: int = 2,
) -> Generator:
    """Recursive-doubling allreduce; every rank returns the result.

    Non-power-of-two worlds fold the surplus ranks into the largest
    power-of-two block first and re-broadcast at the end (the standard
    MPICH approach)."""
    size, rank = ctx.size, ctx.rank
    t = _COLL_TAG_BASE + tag
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = value

    # Fold-in: ranks >= pof2 send their value to rank - rem ... actually
    # the first `rem` ranks absorb the surplus ranks' values.
    if rank >= pof2:
        yield from ctx.send(rank - pof2, acc, t)
        msg = yield from ctx.recv(rank - pof2, t + 1)
        return msg.payload
    if rank < rem:
        msg = yield from ctx.recv(rank + pof2, t)
        acc = _op_apply(op, acc, msg.payload)

    # Recursive doubling among the power-of-two block.
    mask = 1
    while mask < pof2:
        partner = rank ^ mask
        send_ev = ctx.isend(partner, acc, t + 2)
        msg = yield from ctx.recv(partner, t + 2)
        yield send_ev
        acc = _op_apply(op, acc, msg.payload)
        mask <<= 1

    # Fold-out: return results to the surplus ranks.
    if rank < rem:
        yield from ctx.send(rank + pof2, acc, t + 1)
    return acc


def barrier(ctx: RankContext, tag: int = 3) -> Generator:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of empty messages."""
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return None
    t = _COLL_TAG_BASE + tag
    step = 1
    round_no = 0
    while step < size:
        dst = (rank + step) % size
        src = (rank - step) % size
        send_ev = ctx.isend(dst, None, t + round_no)
        yield from ctx.recv(src, t + round_no)
        yield send_ev
        step <<= 1
        round_no += 1
    return None


def gather(
    ctx: RankContext, value: Any, root: int = 0, tag: int = 4
) -> Generator:
    """Linear gather; the root returns the list ordered by rank."""
    t = _COLL_TAG_BASE + tag
    if ctx.rank != root:
        yield ctx.isend(root, value, t)
        return None
    out: list[Any] = [None] * ctx.size
    out[root] = value
    for _ in range(ctx.size - 1):
        msg = yield from ctx.recv(tag=t)
        out[msg.src] = msg.payload
    return out


def scatter(
    ctx: RankContext, values: list[Any] | None, root: int = 0, tag: int = 5
) -> Generator:
    """Linear scatter from the root; each rank returns its element."""
    t = _COLL_TAG_BASE + tag
    if ctx.rank == root:
        if values is None or len(values) != ctx.size:
            raise ValueError("root must supply one value per rank")
        events = []
        for dst in range(ctx.size):
            if dst != root:
                events.append(ctx.isend(dst, values[dst], t))
        for ev in events:
            yield ev
        return values[root]
    msg = yield from ctx.recv(root, t)
    return msg.payload


def allgather(ctx: RankContext, value: Any, tag: int = 6) -> Generator:
    """Ring allgather: ``p - 1`` rounds of neighbour exchange."""
    size, rank = ctx.size, ctx.rank
    t = _COLL_TAG_BASE + tag
    out: list[Any] = [None] * size
    out[rank] = value
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_idx = rank
    for _ in range(size - 1):
        send_ev = ctx.isend(right, (carry_idx, out[carry_idx]), t)
        msg = yield from ctx.recv(left, t)
        yield send_ev
        carry_idx, payload = msg.payload
        out[carry_idx] = payload
    return out


def reduce_scatter(
    ctx: RankContext,
    values: list[Any],
    op: Callable[[Any, Any], Any] = np.add,
    tag: int = 7,
) -> Generator:
    """Reduce ``values`` (one entry per rank) element-wise across ranks,
    scattering entry ``i`` to rank ``i``.  Implemented as reduce-to-root
    + scatter (the small-message algorithm)."""
    if len(values) != ctx.size:
        raise ValueError("need one value per rank")
    t = tag
    reduced = yield from reduce(
        ctx,
        values,
        op=lambda a, b: [_op_apply(op, x, y) for x, y in zip(a, b)],
        tag=t,
    )
    mine = yield from scatter(
        ctx, reduced if ctx.rank == 0 else None, root=0, tag=t + 1
    )
    return mine


def scan(
    ctx: RankContext,
    value: Any,
    op: Callable[[Any, Any], Any] = np.add,
    tag: int = 9,
) -> Generator:
    """Inclusive prefix reduction: rank r returns op-fold of ranks 0..r
    (linear pipeline, as MPICH uses at small scale)."""
    t = _COLL_TAG_BASE + tag
    acc = value
    if ctx.rank > 0:
        msg = yield from ctx.recv(ctx.rank - 1, t)
        acc = _op_apply(op, msg.payload, value)
    if ctx.rank + 1 < ctx.size:
        yield from ctx.send(ctx.rank + 1, acc, t)
    return acc


def alltoall(ctx: RankContext, values: list[Any], tag: int = 11) -> Generator:
    """Personalised all-to-all: rank r sends ``values[d]`` to rank d and
    returns the list it received, ordered by source.  Pairwise-exchange
    schedule (p-1 rounds, partner = rank XOR round where possible)."""
    size, rank = ctx.size, ctx.rank
    if len(values) != size:
        raise ValueError("need one value per destination")
    t = _COLL_TAG_BASE + tag
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        send_ev = ctx.isend(dst, values[dst], t + step)
        msg = yield from ctx.recv(src, t + step)
        yield send_ev
        out[src] = msg.payload
    return out
