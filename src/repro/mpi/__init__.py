"""Message-passing substrate: a discrete-event MPI simulator.

Ranks are Python generators that exchange **real payloads** (NumPy
arrays) through the event engine; message timing is charged by a
pluggable network model (usually a
:class:`~repro.net.protocol.ProtocolStack` + topology via
:class:`~repro.cluster.cluster.Cluster`).  Collectives are implemented
from point-to-point operations with the classical algorithms (binomial
broadcast, recursive-doubling allreduce, dissemination barrier), so
their cost structure emerges from the same per-message model the paper
measures in Figure 7.
"""

from repro.mpi.api import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    MPIWorld,
    RankContext,
    SyntheticPayload,
    UniformNetwork,
    payload_nbytes,
)
from repro.mpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    reduce_scatter,
    scan,
    scatter,
)
from repro.mpi.benchmarks import PingPongResult, ping_pong

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "MPIWorld",
    "RankContext",
    "SyntheticPayload",
    "UniformNetwork",
    "payload_nbytes",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter",
    "scan",
    "scatter",
    "PingPongResult",
    "ping_pong",
]
