"""Point-to-point MPI simulation API.

A :class:`MPIWorld` hosts ``n`` ranks, each a generator taking a
:class:`RankContext`.  Ranks yield context operations::

    def worker(ctx):
        data = np.arange(10.0)
        if ctx.rank == 0:
            yield from ctx.send(1, data)
        else:
            msg = yield from ctx.recv(0)
        yield ctx.compute(1e-3)          # one millisecond of work
        yield ctx.compute_flops(2e6)     # or work in FLOPs

Message cost: the sender is occupied for the stack's CPU occupancy,
the payload arrives at the destination ``transfer_time`` later
(latency + size/bandwidth + switch hops), and a receive completes when
a matching message has arrived.  Payloads are real objects — NumPy
arrays pass through unchanged, so distributed numerics (the HPL LU in
:mod:`repro.apps.hpl`) compute true results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.sim.engine import Engine, Event, SimFailure

# Per-rank spans (compute / comm / wait / net) flow into the unified
# observability layer; the engine caches the active recorder at world
# construction, so a disabled recorder costs one attribute check per op.

ANY_SOURCE = -1
ANY_TAG = -1


class RankFailure(SimFailure):
    """A rank died (node crash, PCIe hang, thermal shutdown).

    Raised inside the dying rank's generator, and thrown into any peer
    blocked on a receive posted against that specific source — the MPI
    analogue of a ULFM process-failure notification.  Catchable; an
    uncaught ``RankFailure`` is contained per-process and re-raised by
    :meth:`MPIWorld.run` so a resilient runner can roll back and retry.
    """

    def __init__(self, rank: int, cause: Any = None) -> None:
        super().__init__(f"rank {rank} failed" + (f" ({cause})" if cause else ""))
        self.rank = rank
        self.cause = cause


class RecvTimeout(SimFailure):
    """A ``recv(timeout=...)`` expired before a matching message
    arrived — the failure-detection primitive for peers that die
    silently (the Tegra PCIe hang leaves no other signal)."""

    def __init__(self, rank: int, src: int, tag: int, timeout_s: float) -> None:
        super().__init__(
            f"rank {rank}: recv(src={src}, tag={tag}) timed out "
            f"after {timeout_s} s"
        )
        self.rank = rank
        self.src = src
        self.tag = tag
        self.timeout_s = timeout_s


class DeadlockError(RuntimeError):
    """The engine drained with ranks still blocked.

    Carries a structured diagnostic instead of a bare message: for each
    stuck rank, the pending receives it posted (``(src, tag)`` pairs,
    ``-1`` = wildcard) and a summary of the unmatched messages sitting
    in its mailbox (``(src, tag, nbytes)`` triples).
    """

    def __init__(
        self,
        unfinished: list[str],
        pending: dict[int, list[tuple[int, int]]],
        mailboxes: dict[int, list[tuple[int, int, int]]],
    ) -> None:
        self.unfinished = unfinished
        self.pending = pending
        self.mailboxes = mailboxes
        lines = [f"deadlock: ranks never completed: {unfinished}"]
        for rank in sorted(pending):
            lines.append(
                f"  rank {rank}: pending recv (src, tag): {pending[rank]}"
            )
            box = mailboxes.get(rank, [])
            if box:
                lines.append(
                    f"  rank {rank}: unmatched mailbox "
                    f"(src, tag, nbytes): {box}"
                )
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class SyntheticPayload:
    """A payload that is pure size — used by the application *models*
    (PEPC/GROMACS/... comm skeletons) where the bytes matter but the
    values do not."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


def payload_nbytes(obj: Any) -> int:
    """Wire size of a payload object."""
    if isinstance(obj, SyntheticPayload):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.floating, np.integer)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 8
    if obj is None:
        return 0
    return 64  # envelope estimate for small python objects


@dataclass(frozen=True)
class Message:
    """A delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    received_at: float


class UniformNetwork:
    """The simplest network model: one protocol stack everywhere, no
    topology (every pair one switch hop apart).  Good for two-node
    benchmarks and unit tests; clusters use
    :class:`repro.cluster.cluster.ClusterNetwork`."""

    def __init__(self, stack, hop_latency_us: float = 0.0) -> None:
        self.stack = stack
        self.hop_latency_us = hop_latency_us

    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 1e-7  # self-send through shared memory
        return self.stack.transfer_time_s(nbytes) + self.hop_latency_us * 1e-6

    def sender_occupancy_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 0.0
        return self.stack.cpu_occupancy_s(nbytes)


class _Delivery:
    """Deferred arrival of one in-flight message.

    A slotted callable attached to the wire-transfer timeout instead of
    a per-send closure: ``isend`` is the hottest MPI path and a closure
    allocates one cell per captured variable per message.  Reads
    ``engine._rec`` at fire time — identical to capture time, since an
    engine's recorder is fixed at construction."""

    __slots__ = ("world", "src", "dst", "tag", "payload", "nbytes", "sent_at")

    def __init__(
        self,
        world: "MPIWorld",
        src: int,
        dst: int,
        tag: int,
        payload: Any,
        nbytes: int,
        sent_at: float,
    ) -> None:
        self.world = world
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.sent_at = sent_at

    def __call__(self, _ev: Event | None = None) -> None:
        world = self.world
        engine = world.engine
        now = engine.now
        msg = Message(
            src=self.src,
            dst=self.dst,
            tag=self.tag,
            payload=self.payload,
            nbytes=self.nbytes,
            sent_at=self.sent_at,
            received_at=now,
        )
        rec = engine._rec
        if rec is not None:
            rec.instant(
                "deliver", "net", now,
                rank=self.dst, src=self.src, bytes=self.nbytes, tag=self.tag,
            )
        world.contexts[self.dst]._deliver(msg)


@dataclass
class RankStats:
    """Accounting per rank."""

    compute_s: float = 0.0
    comm_wait_s: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0


class RankContext:
    """Per-rank handle passed to rank generators."""

    def __init__(self, world: "MPIWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.stats = RankStats()
        self.failed = False
        self._mailbox: list[Message] = []
        self._pending_recv: list[tuple[int, int, Event]] = []

    # -- basics ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def now(self) -> float:
        return self.world.engine.now

    def compute(self, seconds: float) -> Event:
        """Occupy this rank with computation for ``seconds``."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.stats.compute_s += seconds
        engine = self.world.engine
        rec = engine._rec
        if rec is not None:
            rec.span(
                "compute", "compute", engine.now, engine.now + seconds,
                rank=self.rank,
            )
        return engine.timeout(seconds)

    def compute_flops(self, flops: float) -> Event:
        """Computation expressed in FLOPs, at this rank's node speed."""
        gflops = self.world.rank_gflops(self.rank)
        return self.compute(flops / (gflops * 1e9))

    # -- point-to-point ------------------------------------------------------
    def send(self, dst: int, payload: Any, tag: int = 0) -> Generator:
        """Blocking-ish send: returns once the sender CPU is free (the
        wire transfer continues in the background)."""
        ev = self.isend(dst, payload, tag)
        yield ev
        return ev.value

    def isend(self, dst: int, payload: Any, tag: int = 0) -> Event:
        """Start a send; the returned event fires when the sender's CPU
        occupancy for this message ends."""
        if not (0 <= dst < self.world.size):
            raise ValueError(f"destination {dst} out of range")
        # The model apps send SyntheticPayload almost exclusively; skip
        # the generic type dispatch for them.
        nbytes = (
            payload.nbytes
            if type(payload) is SyntheticPayload
            else payload_nbytes(payload)
        )
        net = self.world.network
        occupy = net.sender_occupancy_s(self.rank, dst, nbytes)
        transfer = net.transfer_time_s(self.rank, dst, nbytes)
        engine = self.world.engine
        sent_at = engine.now
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        rec = engine._rec
        if rec is not None:
            rec.span(
                f"send->{dst}", "comm", sent_at, sent_at + occupy,
                rank=self.rank, dst=dst, bytes=nbytes, tag=tag,
            )
            rec.span(
                f"xfer {self.rank}->{dst}", "net", sent_at,
                sent_at + transfer, rank=self.rank, dst=dst, bytes=nbytes,
            )
            rec.counter(
                "mpi.bytes_sent", sent_at, self.stats.bytes_sent,
                rank=self.rank,
            )

        delivery = _Delivery(
            self.world, self.rank, dst, tag, payload, nbytes, sent_at
        )
        if rec is None:
            # Untraced fast path: schedule the delivery callable directly
            # instead of building a timeout Event just to hang one
            # callback on it.  call_in consumes exactly one sequence
            # number, like timeout, so dispatch order is unchanged.
            engine.call_in(transfer, delivery)
        else:
            # Traced: keep the Event so the schedule/fire instants (and
            # their seq numbers) match the golden traces byte-for-byte.
            engine.timeout(transfer).callbacks.append(delivery)
        return engine.timeout(occupy)

    def _deliver(self, msg: Message) -> None:
        if self.failed:
            return  # a crashed node receives nothing; the bytes are lost
        for i, (src, tag, ev) in enumerate(self._pending_recv):
            if (src in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag)):
                del self._pending_recv[i]
                ev.succeed(msg)
                return
        self._mailbox.append(msg)

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Generator:
        """Blocking receive; returns the :class:`Message`.

        With ``timeout`` the wait is bounded: if no matching message has
        arrived after ``timeout`` simulated seconds the posted receive
        is withdrawn and :class:`RecvTimeout` is raised.  A matching
        message arriving later simply lands in the mailbox for a retry.

        When the message wins the race, the losing watchdog timer is
        *cancelled* — otherwise every timed receive would leave a dead
        entry in the scheduler heap until its far-future expiry, and
        the run's drain (hence its makespan) would stretch out to the
        last dead watchdog instead of the last real event.
        """
        ev = self.irecv(src, tag)
        t0 = self.now
        if timeout is None or ev.triggered:
            msg = yield ev
        else:
            if timeout < 0:
                raise ValueError("timeout must be non-negative")
            engine = self.world.engine
            timer = engine.timeout(timeout)
            try:
                yield engine.any_of([ev, timer])
            finally:
                if not timer.triggered:
                    timer.cancel()
            if not ev.triggered:
                self._cancel_recv(ev)
                self.stats.comm_wait_s += self.now - t0
                rec = engine._rec
                if rec is not None:
                    rec.instant(
                        "recv.timeout", "wait", self.now,
                        rank=self.rank, src=src, tag=tag,
                    )
                raise RecvTimeout(self.rank, src, tag, timeout)
            msg = ev.value
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span(
                f"recv<-{msg.src}", "wait", t0, self.now,
                rank=self.rank, src=msg.src, bytes=msg.nbytes, tag=msg.tag,
            )
        return msg

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Post a receive; the event fires with the matching Message.

        A receive posted against a *specific* source that is already
        dead fails immediately with :class:`RankFailure` — waiting for a
        crashed node to speak again would deadlock the survivor.
        """
        for i, msg in enumerate(self._mailbox):
            if (src in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag)):
                del self._mailbox[i]
                ev = self.world.engine.event()
                ev.succeed(msg)
                return ev
        ev = self.world.engine.event()
        if self.world._any_failed and src >= 0 and self.world.contexts[src].failed:
            ev.fail(RankFailure(src, "peer recv"))
            return ev
        self._pending_recv.append((src, tag, ev))
        return ev

    def _cancel_recv(self, ev: Event) -> None:
        """Withdraw a posted receive (timeout expiry, rank death)."""
        for i, (_src, _tag, pending) in enumerate(self._pending_recv):
            if pending is ev:
                del self._pending_recv[i]
                return

    def exchange(
        self,
        sends: list[tuple[int, Any, int]],
        recvs: list[tuple[int, int]],
    ) -> Generator:
        """Post several sends and receives concurrently and wait for all
        — the correct halo-exchange shape (pairwise ``sendrecv`` ordered
        by neighbour index serialises into an O(p) dependency chain).

        :param sends: ``(dst, payload, tag)`` triples.
        :param recvs: ``(src, tag)`` pairs.
        :returns: received messages, in ``recvs`` order.
        """
        send_evs = [self.isend(d, pl, t) for d, pl, t in sends]
        recv_evs = [self.irecv(s, t) for s, t in recvs]
        t0 = self.now
        yield self.world.engine.all_of(send_evs + recv_evs)
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span(
                "exchange", "wait", t0, self.now,
                rank=self.rank, sends=len(sends), recvs=len(recvs),
            )
        return [ev.value for ev in recv_evs]

    def sendrecv(
        self,
        dst: int,
        payload: Any,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> Generator:
        """Simultaneous send + receive (the halo-exchange primitive)."""
        send_ev = self.isend(dst, payload, send_tag)
        recv_ev = self.irecv(src, recv_tag)
        t0 = self.now
        both = self.world.engine.all_of([send_ev, recv_ev])
        yield both
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span("sendrecv", "wait", t0, self.now, rank=self.rank, dst=dst)
        return recv_ev.value


class MPIWorld:
    """A set of simulated MPI ranks over a network model.

    :param n_ranks: world size.
    :param network: object with ``transfer_time_s(src, dst, nbytes)`` and
        ``sender_occupancy_s(src, dst, nbytes)``.
    :param rank_gflops: per-rank achieved GFLOPS (scalar or callable
        ``rank -> GFLOPS``) used by :meth:`RankContext.compute_flops`.
    """

    def __init__(
        self,
        n_ranks: int,
        network: Any,
        rank_gflops: float | Callable[[int], float] = 1.0,
    ) -> None:
        if n_ranks <= 0:
            raise ValueError("need at least one rank")
        self.size = n_ranks
        self.network = network
        self.engine = Engine()
        self._rank_gflops = rank_gflops
        self.contexts = [RankContext(self, r) for r in range(n_ranks)]
        self._any_failed = False
        self._procs: dict[int, "Any"] = {}
        self._daemons: list[Any] = []

    def rank_gflops(self, rank: int) -> float:
        if callable(self._rank_gflops):
            return float(self._rank_gflops(rank))
        return float(self._rank_gflops)

    def spawn_daemon(self, gen: Generator, name: str = "daemon") -> Any:
        """Start a background process (e.g. a fault injector) that is
        *not* a rank: the run stops when every rank finishes, even if
        the daemon still has timers pending — a crash scheduled after
        job completion must not stretch the makespan."""
        proc = self.engine.process(gen, name=name)
        self._daemons.append(proc)
        return proc

    def kill_rank(self, rank: int, cause: Any = None) -> None:
        """Crash ``rank`` at the current simulated time.

        The dying rank has :class:`RankFailure` thrown into it, its
        posted receives are withdrawn, and every *peer* blocked on a
        receive from this specific rank fails immediately (wildcard
        receives keep waiting — another sender may still match; they
        surface via ``recv(timeout=...)`` instead).
        """
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        ctx = self.contexts[rank]
        if ctx.failed:
            return
        ctx.failed = True
        self._any_failed = True
        ctx._pending_recv.clear()
        rec = self.engine._rec
        if rec is not None:
            rec.instant(
                "rank.failed", "fault", self.engine.now,
                rank=rank, cause=str(cause) if cause is not None else "",
            )
            rec.bump("fault.rank_failures")
        proc = self._procs.get(rank)
        if proc is not None:
            proc.throw(RankFailure(rank, cause))
        for other in self.contexts:
            if other is ctx or other.failed:
                continue
            doomed = [
                ev for src, _tag, ev in other._pending_recv if src == rank
            ]
            for ev in doomed:
                other._cancel_recv(ev)
                ev.fail(RankFailure(rank, cause))

    def run(
        self,
        rank_fn: Callable[..., Generator],
        *args: Any,
        ranks: Iterable[int] | None = None,
    ) -> "MPIRunResult":
        """Launch ``rank_fn(ctx, *args)`` on every rank and run to
        completion.  Returns makespan and per-rank results/stats.

        Failure semantics: a rank dying of a :class:`SimFailure`
        (``RankFailure``, ``RecvTimeout``, ...) re-raises that failure
        here — catchable by a resilient runner.  Ranks stuck forever
        with no failure raise a structured :class:`DeadlockError`.
        """
        selected = range(self.size) if ranks is None else list(ranks)
        procs = [
            self.engine.process(
                rank_fn(self.contexts[r], *args), name=f"rank{r}"
            )
            for r in selected
        ]
        self._procs = dict(zip(selected, procs))
        if self._daemons:
            # Run until every rank *settles* (finishes or fails) so that
            # survivors observe a crash — cascade, catch RankFailure, or
            # hit their recv timeouts — but a daemon's still-pending
            # timers (a crash scheduled after the job would end) cannot
            # stretch the makespan.  all_of is unusable here: it fails
            # fast on the first rank death, freezing the clock before
            # peers process their failure notifications.
            settle = self.engine.event()
            state = {"left": len(procs)}

            def _one_settled(_ev: Event) -> None:
                state["left"] -= 1
                if state["left"] == 0:
                    settle.succeed()

            for proc in procs:
                proc.completion.callbacks.append(_one_settled)
            self.engine.run_until(settle)
        else:
            self.engine.run()
        for proc in procs:
            if proc.failure is not None:
                raise proc.failure
        unfinished = [p.name for p in procs if not p.done]
        if unfinished:
            raise DeadlockError(
                unfinished,
                pending={
                    r: [(src, tag) for src, tag, _ev in
                        self.contexts[r]._pending_recv]
                    for r, p in zip(selected, procs) if not p.done
                },
                mailboxes={
                    r: [(m.src, m.tag, m.nbytes) for m in
                        self.contexts[r]._mailbox]
                    for r, p in zip(selected, procs) if not p.done
                },
            )
        return MPIRunResult(
            makespan_s=self.engine.now,
            results=[p.result for p in procs],
            stats=[self.contexts[r].stats for r in selected],
        )


@dataclass
class MPIRunResult:
    """Outcome of one simulated MPI program."""

    makespan_s: float
    results: list[Any]
    stats: list[RankStats] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)
