"""Point-to-point MPI simulation API.

A :class:`MPIWorld` hosts ``n`` ranks, each a generator taking a
:class:`RankContext`.  Ranks yield context operations::

    def worker(ctx):
        data = np.arange(10.0)
        if ctx.rank == 0:
            yield from ctx.send(1, data)
        else:
            msg = yield from ctx.recv(0)
        yield ctx.compute(1e-3)          # one millisecond of work
        yield ctx.compute_flops(2e6)     # or work in FLOPs

Message cost: the sender is occupied for the stack's CPU occupancy,
the payload arrives at the destination ``transfer_time`` later
(latency + size/bandwidth + switch hops), and a receive completes when
a matching message has arrived.  Payloads are real objects — NumPy
arrays pass through unchanged, so distributed numerics (the HPL LU in
:mod:`repro.apps.hpl`) compute true results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.sim.engine import Engine, Event

# Per-rank spans (compute / comm / wait / net) flow into the unified
# observability layer; the engine caches the active recorder at world
# construction, so a disabled recorder costs one attribute check per op.

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class SyntheticPayload:
    """A payload that is pure size — used by the application *models*
    (PEPC/GROMACS/... comm skeletons) where the bytes matter but the
    values do not."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


def payload_nbytes(obj: Any) -> int:
    """Wire size of a payload object."""
    if isinstance(obj, SyntheticPayload):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.floating, np.integer)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(x) for x in obj) + 8
    if obj is None:
        return 0
    return 64  # envelope estimate for small python objects


@dataclass(frozen=True)
class Message:
    """A delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    received_at: float


class UniformNetwork:
    """The simplest network model: one protocol stack everywhere, no
    topology (every pair one switch hop apart).  Good for two-node
    benchmarks and unit tests; clusters use
    :class:`repro.cluster.cluster.ClusterNetwork`."""

    def __init__(self, stack, hop_latency_us: float = 0.0) -> None:
        self.stack = stack
        self.hop_latency_us = hop_latency_us

    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 1e-7  # self-send through shared memory
        return self.stack.transfer_time_s(nbytes) + self.hop_latency_us * 1e-6

    def sender_occupancy_s(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 0.0
        return self.stack.cpu_occupancy_s(nbytes)


@dataclass
class RankStats:
    """Accounting per rank."""

    compute_s: float = 0.0
    comm_wait_s: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0


class RankContext:
    """Per-rank handle passed to rank generators."""

    def __init__(self, world: "MPIWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.stats = RankStats()
        self._mailbox: list[Message] = []
        self._pending_recv: list[tuple[int, int, Event]] = []

    # -- basics ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.world.size

    @property
    def now(self) -> float:
        return self.world.engine.now

    def compute(self, seconds: float) -> Event:
        """Occupy this rank with computation for ``seconds``."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.stats.compute_s += seconds
        engine = self.world.engine
        rec = engine._rec
        if rec is not None:
            rec.span(
                "compute", "compute", engine.now, engine.now + seconds,
                rank=self.rank,
            )
        return engine.timeout(seconds)

    def compute_flops(self, flops: float) -> Event:
        """Computation expressed in FLOPs, at this rank's node speed."""
        gflops = self.world.rank_gflops(self.rank)
        return self.compute(flops / (gflops * 1e9))

    # -- point-to-point ------------------------------------------------------
    def send(self, dst: int, payload: Any, tag: int = 0) -> Generator:
        """Blocking-ish send: returns once the sender CPU is free (the
        wire transfer continues in the background)."""
        ev = self.isend(dst, payload, tag)
        yield ev
        return ev.value

    def isend(self, dst: int, payload: Any, tag: int = 0) -> Event:
        """Start a send; the returned event fires when the sender's CPU
        occupancy for this message ends."""
        if not (0 <= dst < self.world.size):
            raise ValueError(f"destination {dst} out of range")
        nbytes = payload_nbytes(payload)
        net = self.world.network
        occupy = net.sender_occupancy_s(self.rank, dst, nbytes)
        transfer = net.transfer_time_s(self.rank, dst, nbytes)
        engine = self.world.engine
        sent_at = engine.now
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        rec = engine._rec
        if rec is not None:
            rec.span(
                f"send->{dst}", "comm", sent_at, sent_at + occupy,
                rank=self.rank, dst=dst, bytes=nbytes, tag=tag,
            )
            rec.span(
                f"xfer {self.rank}->{dst}", "net", sent_at,
                sent_at + transfer, rank=self.rank, dst=dst, bytes=nbytes,
            )
            rec.counter(
                "mpi.bytes_sent", sent_at, self.stats.bytes_sent,
                rank=self.rank,
            )

        def deliver(_ev: Event) -> None:
            msg = Message(
                src=self.rank,
                dst=dst,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                sent_at=sent_at,
                received_at=engine.now,
            )
            if rec is not None:
                rec.instant(
                    "deliver", "net", engine.now,
                    rank=dst, src=self.rank, bytes=nbytes, tag=tag,
                )
            self.world.contexts[dst]._deliver(msg)

        engine.timeout(transfer).callbacks.append(deliver)
        return engine.timeout(occupy)

    def _deliver(self, msg: Message) -> None:
        for i, (src, tag, ev) in enumerate(self._pending_recv):
            if (src in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag)):
                del self._pending_recv[i]
                ev.succeed(msg)
                return
        self._mailbox.append(msg)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the :class:`Message`."""
        ev = self.irecv(src, tag)
        t0 = self.now
        msg = yield ev
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span(
                f"recv<-{msg.src}", "wait", t0, self.now,
                rank=self.rank, src=msg.src, bytes=msg.nbytes, tag=msg.tag,
            )
        return msg

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Post a receive; the event fires with the matching Message."""
        for i, msg in enumerate(self._mailbox):
            if (src in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag)):
                del self._mailbox[i]
                ev = self.world.engine.event()
                ev.succeed(msg)
                return ev
        ev = self.world.engine.event()
        self._pending_recv.append((src, tag, ev))
        return ev

    def exchange(
        self,
        sends: list[tuple[int, Any, int]],
        recvs: list[tuple[int, int]],
    ) -> Generator:
        """Post several sends and receives concurrently and wait for all
        — the correct halo-exchange shape (pairwise ``sendrecv`` ordered
        by neighbour index serialises into an O(p) dependency chain).

        :param sends: ``(dst, payload, tag)`` triples.
        :param recvs: ``(src, tag)`` pairs.
        :returns: received messages, in ``recvs`` order.
        """
        send_evs = [self.isend(d, pl, t) for d, pl, t in sends]
        recv_evs = [self.irecv(s, t) for s, t in recvs]
        t0 = self.now
        yield self.world.engine.all_of(send_evs + recv_evs)
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span(
                "exchange", "wait", t0, self.now,
                rank=self.rank, sends=len(sends), recvs=len(recvs),
            )
        return [ev.value for ev in recv_evs]

    def sendrecv(
        self,
        dst: int,
        payload: Any,
        src: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> Generator:
        """Simultaneous send + receive (the halo-exchange primitive)."""
        send_ev = self.isend(dst, payload, send_tag)
        recv_ev = self.irecv(src, recv_tag)
        t0 = self.now
        both = self.world.engine.all_of([send_ev, recv_ev])
        yield both
        self.stats.comm_wait_s += self.now - t0
        rec = self.world.engine._rec
        if rec is not None:
            rec.span("sendrecv", "wait", t0, self.now, rank=self.rank, dst=dst)
        return recv_ev.value


class MPIWorld:
    """A set of simulated MPI ranks over a network model.

    :param n_ranks: world size.
    :param network: object with ``transfer_time_s(src, dst, nbytes)`` and
        ``sender_occupancy_s(src, dst, nbytes)``.
    :param rank_gflops: per-rank achieved GFLOPS (scalar or callable
        ``rank -> GFLOPS``) used by :meth:`RankContext.compute_flops`.
    """

    def __init__(
        self,
        n_ranks: int,
        network: Any,
        rank_gflops: float | Callable[[int], float] = 1.0,
    ) -> None:
        if n_ranks <= 0:
            raise ValueError("need at least one rank")
        self.size = n_ranks
        self.network = network
        self.engine = Engine()
        self._rank_gflops = rank_gflops
        self.contexts = [RankContext(self, r) for r in range(n_ranks)]

    def rank_gflops(self, rank: int) -> float:
        if callable(self._rank_gflops):
            return float(self._rank_gflops(rank))
        return float(self._rank_gflops)

    def run(
        self,
        rank_fn: Callable[..., Generator],
        *args: Any,
        ranks: Iterable[int] | None = None,
    ) -> "MPIRunResult":
        """Launch ``rank_fn(ctx, *args)`` on every rank and run to
        completion.  Returns makespan and per-rank results/stats."""
        selected = range(self.size) if ranks is None else list(ranks)
        procs = [
            self.engine.process(
                rank_fn(self.contexts[r], *args), name=f"rank{r}"
            )
            for r in selected
        ]
        self.engine.run()
        unfinished = [p.name for p in procs if not p.done]
        if unfinished:
            raise RuntimeError(
                f"deadlock: ranks never completed: {unfinished}"
            )
        return MPIRunResult(
            makespan_s=self.engine.now,
            results=[p.result for p in procs],
            stats=[self.contexts[r].stats for r in selected],
        )


@dataclass
class MPIRunResult:
    """Outcome of one simulated MPI program."""

    makespan_s: float
    results: list[Any]
    stats: list[RankStats] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)
