"""NIC attachment models: how the Ethernet controller reaches the SoC.

On the SECO (Tegra) boards the 1 GbE NIC sits on PCIe; on Arndale it
hangs off a USB 3.0 port, so every packet crosses the USB host stack.
Section 4.1: "all network communication has to pass through the USB
software stack and this yields higher latency" — the USB attachment's
large software cost (which shrinks with CPU frequency) and hardware
polling cost reproduce that, including the observation that raising the
Exynos clock from 1.0 to 1.4 GHz cuts latency by ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NICAttachment:
    """Cost model of the path between SoC and NIC.

    Software terms are expressed at a 1 GHz reference clock on a
    reference core (see ``CPU_PROTOCOL_SPEED`` in
    :mod:`repro.net.protocol`) and scale inversely with the product of
    clock and per-core protocol speed; hardware terms are fixed.

    :param sw_overhead_us: per-message driver/stack CPU time (µs @1 GHz).
    :param hw_overhead_us: fixed per-message controller latency (µs).
    :param sw_ns_per_byte: per-byte CPU cost of moving payload across the
        attachment (µs-scale for USB, ~0 for DMA-capable PCIe), ns @1 GHz.
    :param stable: Section 6.1 — the Tegra PCIe interface "sometimes
        stopped responding when used under heavy workloads"; the fault
        injector uses this flag.
    """

    name: str
    sw_overhead_us: float
    hw_overhead_us: float
    sw_ns_per_byte: float
    stable: bool = True

    def __post_init__(self) -> None:
        if self.sw_overhead_us < 0 or self.hw_overhead_us < 0:
            raise ValueError("overheads must be non-negative")
        if self.sw_ns_per_byte < 0:
            raise ValueError("per-byte cost must be non-negative")


#: PCIe-attached NIC (SECO Q7 / CARMA).  DMA keeps per-byte CPU cost nil;
#: the Tegra PCIe root was unstable under load (Section 6.1).
PCIE = NICAttachment(
    "PCIe", sw_overhead_us=6.0, hw_overhead_us=7.6, sw_ns_per_byte=0.0,
    stable=False,
)

#: USB 3.0-attached NIC (Arndale).  Every byte is shepherded by the USB
#: host stack: large fixed polling latency and a real per-byte CPU cost.
USB3 = NICAttachment(
    "USB3.0", sw_overhead_us=18.0, hw_overhead_us=45.0, sw_ns_per_byte=7.2
)

#: Integrated/onboard controller (the laptop).
ONBOARD = NICAttachment(
    "onboard", sw_overhead_us=4.0, hw_overhead_us=4.0, sw_ns_per_byte=0.0
)

ATTACHMENTS = {"pcie": PCIE, "usb3": USB3, "onboard": ONBOARD}


def attachment_for(name: str) -> NICAttachment:
    """Look up an attachment by the BoardInfo key (``pcie``/``usb3``/...)."""
    try:
        return ATTACHMENTS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown NIC attachment {name!r}; known: {sorted(ATTACHMENTS)}"
        ) from None
