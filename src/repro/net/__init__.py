"""Interconnect substrate: links, NIC attachments, protocol stacks,
switches and topologies.

The paper's Section 4.1 decomposes cluster communication cost into the
Ethernet wire, the NIC attachment (PCIe on the SECO/Tegra boards, USB 3.0
on Arndale — the USB software stack is why Exynos latency is *higher*
despite the faster core), and the messaging software (TCP/IP vs the
Open-MX direct Ethernet protocol).  Each of those is a model here, and
:class:`~repro.net.protocol.ProtocolStack` composes them into per-message
latency and per-byte cost — the quantities the MPI simulator charges.
"""

from repro.net.link import Link, GBE, FAST_ETHERNET, TEN_GBE, INFINIBAND_40G
from repro.net.nic import NICAttachment, PCIE, USB3, ONBOARD
from repro.net.protocol import (
    Protocol,
    ProtocolStack,
    TCP_IP,
    OPEN_MX,
    CPU_PROTOCOL_SPEED,
)
from repro.net.switch import Switch
from repro.net.topology import TreeTopology

__all__ = [
    "Link",
    "GBE",
    "FAST_ETHERNET",
    "TEN_GBE",
    "INFINIBAND_40G",
    "NICAttachment",
    "PCIE",
    "USB3",
    "ONBOARD",
    "Protocol",
    "ProtocolStack",
    "TCP_IP",
    "OPEN_MX",
    "CPU_PROTOCOL_SPEED",
    "Switch",
    "TreeTopology",
]
