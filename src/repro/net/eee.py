"""Energy Efficient Ethernet (IEEE 802.3az) — the subject of the cited
latency study [36] (Saravanan, Carpenter, Ramirez, ISPASS 2013).

EEE lets a link enter a Low Power Idle (LPI) state between packets,
saving most of the PHY power at the price of a wake-up latency on the
next packet.  The cited study's finding — that tens of microseconds of
added latency inflate HPC execution time by tens of percent — is where
the paper's Section 4.1 penalty estimates come from.  This module models
the trade-off: PHY energy saved as a function of link utilisation versus
the latency added per message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import GBE, Link
from repro.core.metrics import latency_penalty


@dataclass(frozen=True)
class EEELink:
    """An 802.3az-capable link.

    :param link: the underlying physical link.
    :param phy_active_w: PHY power while transmitting/idle-active.
    :param phy_lpi_w: PHY power in Low Power Idle.
    :param wake_us: LPI -> active transition time charged to the first
        packet after an idle period (16.5 µs for 1000BASE-T).
    :param sleep_us: active -> LPI transition time (182 µs for
        1000BASE-T; the link cannot save energy during it).
    """

    link: Link = GBE
    phy_active_w: float = 0.5
    phy_lpi_w: float = 0.05
    wake_us: float = 16.5
    sleep_us: float = 182.0

    def __post_init__(self) -> None:
        if self.phy_lpi_w > self.phy_active_w:
            raise ValueError("LPI power cannot exceed active power")
        if min(self.wake_us, self.sleep_us) < 0:
            raise ValueError("transition times must be non-negative")

    # -- energy ------------------------------------------------------------
    def phy_power_w(self, utilisation: float) -> float:
        """Average PHY power at a given link utilisation (fraction of
        time carrying frames), assuming idle gaps long enough to sleep."""
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be in [0, 1]")
        return (
            utilisation * self.phy_active_w
            + (1.0 - utilisation) * self.phy_lpi_w
        )

    def energy_saving_fraction(self, utilisation: float) -> float:
        """PHY energy saved vs an always-active link."""
        return 1.0 - self.phy_power_w(utilisation) / self.phy_active_w

    # -- latency -----------------------------------------------------------
    def added_latency_us(self, asleep: bool = True) -> float:
        """Latency added to a message arriving at a sleeping link."""
        return self.wake_us if asleep else 0.0

    def execution_time_penalty(
        self,
        base_latency_us: float,
        relative_cpu_speed: float = 1.0,
        asleep: bool = True,
    ) -> float:
        """Extra application execution-time fraction caused by enabling
        EEE, via the [36] latency-penalty model: the difference between
        the penalty at (base + wake) latency and at base latency."""
        if base_latency_us < 0:
            raise ValueError("latency must be non-negative")
        with_eee = latency_penalty(
            base_latency_us + self.added_latency_us(asleep),
            relative_cpu_speed,
        )
        without = latency_penalty(base_latency_us, relative_cpu_speed)
        return with_eee - without

    def worth_it(
        self,
        utilisation: float,
        base_latency_us: float,
        relative_cpu_speed: float = 1.0,
    ) -> bool:
        """Crude engineering check: does the PHY saving exceed the
        compute-energy cost of running longer?  (Energy scales with
        execution time at roughly constant cluster power, so the
        break-even is saving_fraction_of_total > time_penalty.)  The PHY
        is a tiny share of node power (~5%), so for HPC traffic patterns
        this is almost always False — the cited study's conclusion."""
        phy_share_of_node = 0.05
        saving = self.energy_saving_fraction(utilisation) * phy_share_of_node
        cost = self.execution_time_penalty(
            base_latency_us, relative_cpu_speed
        )
        return saving > cost
