"""Cluster network topologies.

:class:`TreeTopology` is the two-level leaf/core tree Tibidabo used:
nodes attach to 48-port leaf switches whose uplinks meet at a core
switch.  Crossing within a leaf costs one switch traversal; crossing
between leaves costs three (leaf, core, leaf) — matching the paper's
"maximum latency of three hops".  The bisection bandwidth of the
192-node instance is 8 Gb/s, asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.switch import Switch


@dataclass(frozen=True)
class TreeTopology:
    """A two-level switched tree over ``n_nodes`` nodes.

    :param n_nodes: number of compute nodes.
    :param leaf: the leaf switch model (also used for the core).
    """

    n_nodes: int
    leaf: Switch = field(default_factory=Switch)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("need at least one node")

    @property
    def n_leaves(self) -> int:
        """Leaf switch count (ceil division of nodes over ports)."""
        return -(-self.n_nodes // self.leaf.ports)

    def leaf_of(self, node: int) -> int:
        """Index of the leaf switch a node attaches to."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        return node // self.leaf.ports

    def hops(self, src: int, dst: int) -> int:
        """Switch traversals between two nodes (0 for loopback)."""
        if src == dst:
            return 0
        if self.leaf_of(src) == self.leaf_of(dst):
            return 1
        return 3  # leaf -> core -> leaf

    def max_hops(self) -> int:
        """Worst-case hop count anywhere in the topology."""
        return 1 if self.n_leaves == 1 else 3

    def path_latency_us(self, src: int, dst: int, nbytes: int = 64) -> float:
        """Extra one-way latency from switch traversals on the path."""
        return self.hops(src, dst) * self.leaf.traversal_us(nbytes)

    def bisection_bandwidth_gbps(self) -> float:
        """Bandwidth across the worst even bisection of the network.

        With a single leaf the bisection is through the switch fabric
        itself (half the attached node links); with multiple leaves it is
        the core-facing uplink trunks of half the leaves.
        """
        if self.n_leaves == 1:
            return (self.n_nodes // 2) * self.leaf.link.bandwidth_gbps
        return (self.n_leaves // 2) * self.leaf.uplink_bandwidth_gbps

    def crosses_core(self, src: int, dst: int) -> bool:
        """Whether the path uses the oversubscribed core uplinks."""
        return self.leaf_of(src) != self.leaf_of(dst)
