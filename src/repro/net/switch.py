"""Ethernet switch model.

Tibidabo's network is "a hierarchical 1 GbE network built with 48-port
1 GbE switches, giving a bisection bandwidth of 8 Gb/s and a maximum
latency of three hops" (Section 4).  The model charges a fixed per-hop
forwarding latency (cut-through for the calibration-relevant small
messages; large transfers are pipelined so only one extra frame time per
hop appears) plus an optional oversubscription factor on uplinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import GBE, Link


@dataclass(frozen=True)
class Switch:
    """A fixed-latency, possibly oversubscribed Ethernet switch.

    :param ports: downlink port count (48 for Tibidabo's switches).
    :param hop_latency_us: forwarding latency per traversal.
    :param uplink_ports: ports bonded into the uplink trunk towards the
        core switch; defines the oversubscription ratio.
    :param link: the port link technology.
    """

    name: str = "48-port 1GbE"
    ports: int = 48
    hop_latency_us: float = 3.0
    uplink_ports: int = 4
    link: Link = GBE

    def __post_init__(self) -> None:
        if self.ports <= 0 or self.uplink_ports <= 0:
            raise ValueError("port counts must be positive")
        if self.hop_latency_us < 0:
            raise ValueError("hop latency must be non-negative")

    @property
    def oversubscription(self) -> float:
        """Downlink:uplink bandwidth ratio (12:1 for 48 ports over a
        4 x 1 GbE trunk)."""
        return self.ports / self.uplink_ports

    @property
    def uplink_bandwidth_gbps(self) -> float:
        return self.uplink_ports * self.link.bandwidth_gbps

    def traversal_us(self, nbytes: int = 64) -> float:
        """Extra one-way latency contributed by crossing this switch:
        forwarding latency plus one (pipelined) frame serialisation."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.hop_latency_us + self.link.frame_time_us(
            min(nbytes, self.link.mtu_bytes)
        )

    def uplink_share_mbs(self, concurrent_flows: int) -> float:
        """Fair-share payload bandwidth (MB/s) per flow when
        ``concurrent_flows`` cross the uplink trunk simultaneously."""
        if concurrent_flows <= 0:
            raise ValueError("need at least one flow")
        total = self.uplink_bandwidth_gbps * 1e3 / 8.0 * self.link.efficiency
        per_flow = total / concurrent_flows
        return min(per_flow, self.link.payload_bandwidth_mbs)
