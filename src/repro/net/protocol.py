"""Messaging protocol stacks: TCP/IP vs Open-MX.

Open-MX (Goglin) is a user-space implementation of the Myrinet Express
message-passing stack over plain Ethernet.  Relative to TCP/IP it

* bypasses the kernel TCP/IP path (much smaller per-message CPU cost),
* minimises memory copies (near-zero per-byte CPU cost), and
* for messages of 32 KiB and above uses a rendezvous with memory pinning
  for zero-copy sends / single-copy receives — at the price of one extra
  control round-trip.

Calibration (Figure 7, all one-way, 1 GbE):

======================  ==========  ==========
configuration           latency µs  bandwidth
======================  ==========  ==========
Tegra 2  TCP/IP @1GHz      ~100        65 MB/s
Tegra 2  Open-MX @1GHz      ~65       117 MB/s
Exynos 5 TCP/IP @1GHz      ~125        63 MB/s
Exynos 5 Open-MX @1GHz      ~93        69 MB/s
Exynos 5 @1.4 GHz        ~10% lower   75 MB/s (Open-MX)
======================  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.link import GBE, Link
from repro.net.nic import NICAttachment, PCIE
from repro.obs.recorder import current as _obs_current

#: Per-message protocol processing throughput of each core relative to
#: the 1 GHz reference used by the software-cost constants.  (The A15
#: retires the network stack faster per cycle than the A9.)
CPU_PROTOCOL_SPEED: dict[str, float] = {
    "Cortex-A9": 0.8,
    "Cortex-A15": 1.3,
    "Cortex-A15/ARMv8": 1.4,
    "SandyBridge": 2.2,
    "X-Gene/ARMv8": 1.8,
    "Saltwell": 1.0,
    "Nehalem": 1.8,
}


@dataclass(frozen=True)
class Protocol:
    """A messaging software stack.

    :param sw_overhead_us: per-message CPU cost at the 1 GHz reference
        (sender + receiver sides combined into the one-way figure).
    :param fixed_overhead_us: per-message cost independent of CPU clock
        (interrupt coalescing timers, protocol state machines in the NIC).
    :param sw_ns_per_byte: per-byte CPU cost at the reference clock —
        dominated by memory copies and per-MTU packet processing.
    :param copies: data copies on the send+receive path (documentation /
        ablation knob; ``sw_ns_per_byte`` already reflects it).
    :param rendezvous_bytes: messages at least this large use rendezvous
        (None = never).  Open-MX: 32 KiB.
    :param rendezvous_ns_per_byte: replacement per-byte CPU cost in
        rendezvous mode (zero-copy send, single-copy receive).
    """

    name: str
    sw_overhead_us: float
    fixed_overhead_us: float
    sw_ns_per_byte: float
    copies: int
    rendezvous_bytes: int | None = None
    rendezvous_ns_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if min(self.sw_overhead_us, self.fixed_overhead_us) < 0:
            raise ValueError("overheads must be non-negative")
        if self.sw_ns_per_byte < 0 or self.rendezvous_ns_per_byte < 0:
            raise ValueError("per-byte costs must be non-negative")
        if self.copies < 0:
            raise ValueError("copies must be non-negative")


TCP_IP = Protocol(
    name="TCP/IP",
    sw_overhead_us=38.9,
    fixed_overhead_us=35.25,
    sw_ns_per_byte=5.9,
    copies=2,
)

OPEN_MX = Protocol(
    name="Open-MX",
    sw_overhead_us=24.3,
    fixed_overhead_us=14.45,
    sw_ns_per_byte=0.44,
    copies=1,
    rendezvous_bytes=32 * 1024,
    rendezvous_ns_per_byte=0.30,
)

PROTOCOLS = {"tcp": TCP_IP, "tcp/ip": TCP_IP, "open-mx": OPEN_MX, "openmx": OPEN_MX}


class ProtocolStack:
    """A complete per-message cost model: protocol + NIC attachment +
    link + CPU operating point.

    :param protocol: the messaging software.
    :param attachment: how the NIC reaches the SoC.
    :param link: the physical link.
    :param core_name: micro-architecture key into ``CPU_PROTOCOL_SPEED``.
    :param freq_ghz: CPU clock during communication.
    """

    def __init__(
        self,
        protocol: Protocol,
        attachment: NICAttachment = PCIE,
        link: Link = GBE,
        core_name: str = "Cortex-A9",
        freq_ghz: float = 1.0,
    ) -> None:
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if core_name not in CPU_PROTOCOL_SPEED:
            raise KeyError(
                f"no protocol-speed calibration for {core_name!r}"
            )
        self.protocol = protocol
        self.attachment = attachment
        self.link = link
        self.core_name = core_name
        self.freq_ghz = freq_ghz
        # Per-size memo tables: latency and occupancy are pure functions
        # of nbytes for a fixed stack, and MPI workloads price the same
        # handful of message sizes millions of times.
        self._lat_memo: dict[int, float] = {}
        self._occ_memo: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def _cpu_scale(self) -> float:
        """Divider applied to reference software costs."""
        return CPU_PROTOCOL_SPEED[self.core_name] * self.freq_ghz

    def software_latency_us(self) -> float:
        """CPU-clock-dependent part of the per-message latency."""
        return (
            self.protocol.sw_overhead_us + self.attachment.sw_overhead_us
        ) / self._cpu_scale

    def hardware_latency_us(self) -> float:
        """Clock-independent part of the per-message latency."""
        return (
            self.protocol.fixed_overhead_us
            + self.attachment.hw_overhead_us
            + self.link.propagation_us
        )

    def small_message_latency_us(self) -> float:
        """One-way latency of a small (few-byte) message."""
        return self.software_latency_us() + self.hardware_latency_us()

    def ns_per_byte(self, nbytes: int) -> float:
        """Marginal cost per payload byte for a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        rdv = (
            self.protocol.rendezvous_bytes is not None
            and nbytes >= self.protocol.rendezvous_bytes
        )
        proto_byte = (
            self.protocol.rendezvous_ns_per_byte
            if rdv
            else self.protocol.sw_ns_per_byte
        )
        sw = (proto_byte + self.attachment.sw_ns_per_byte) / self._cpu_scale
        return self.link.wire_ns_per_byte() + sw

    def one_way_latency_us(self, nbytes: int) -> float:
        """One-way time for an ``nbytes`` message, µs (memoized per size)."""
        cached = self._lat_memo.get(nbytes)
        if cached is not None:
            return cached
        lat = self.small_message_latency_us() + nbytes * self.ns_per_byte(nbytes) / 1e3
        rdv = (
            self.protocol.rendezvous_bytes is not None
            and nbytes >= self.protocol.rendezvous_bytes
        )
        if rdv:
            # Rendezvous handshake: one extra control round trip.
            lat += 2.0 * self.small_message_latency_us()
        self._lat_memo[nbytes] = lat
        return lat

    def latency_curve_us(self, sizes: "list[int] | tuple[int, ...]") -> np.ndarray:
        """:meth:`one_way_latency_us` over a whole size grid in one
        array pass — the per-platform latency curve computed as arrays.

        Both rendezvous branches are evaluated elementwise and selected,
        replaying the scalar operation order, so entry ``i`` is
        bit-identical to ``one_way_latency_us(sizes[i])``.  Memoized
        sizes are served from (and fresh sizes stored into) the same
        per-size table the scalar path uses.
        """
        sizes = [int(s) for s in sizes]
        if any(s < 0 for s in sizes):
            raise ValueError("nbytes must be non-negative")
        nb = np.array(sizes, dtype=float)
        small = self.small_message_latency_us()
        rb = self.protocol.rendezvous_bytes
        rdv = np.zeros(len(sizes), dtype=bool) if rb is None else nb >= rb
        proto_byte = np.where(
            rdv,
            self.protocol.rendezvous_ns_per_byte,
            self.protocol.sw_ns_per_byte,
        )
        sw = (proto_byte + self.attachment.sw_ns_per_byte) / self._cpu_scale
        ns_per_byte = self.link.wire_ns_per_byte() + sw
        lat = small + nb * ns_per_byte / 1e3
        lat = np.where(rdv, lat + 2.0 * small, lat)
        out = []
        for i, s in enumerate(sizes):
            cached = self._lat_memo.get(s)
            if cached is None:
                cached = self._lat_memo[s] = float(lat[i])
            out.append(cached)
        return np.array(out, dtype=float)

    def transfer_time_s(self, nbytes: int) -> float:
        """One-way time in seconds (the MPI simulator's unit).

        This is the entry point the network models price every MPI
        message through, so it is where the wire-level observability
        totals accumulate (messages, payload bytes, frames, rendezvous
        round-trips)."""
        rec = _obs_current()
        if rec is not None:
            rec.bump("net.messages")
            rec.bump("net.bytes", nbytes)
            rec.bump("net.frames", self.link.frames_for(nbytes))
            if (
                self.protocol.rendezvous_bytes is not None
                and nbytes >= self.protocol.rendezvous_bytes
            ):
                rec.bump("net.rendezvous")
        return self.one_way_latency_us(nbytes) * 1e-6

    def effective_bandwidth_mbs(self, nbytes: int) -> float:
        """Payload bandwidth a message of ``nbytes`` achieves, MB/s."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return nbytes / self.one_way_latency_us(nbytes)  # B/µs == MB/s

    def asymptotic_bandwidth_mbs(self) -> float:
        """Large-message bandwidth limit, MB/s."""
        return 1e3 / self.ns_per_byte(1 << 24)

    # ------------------------------------------------------------------
    def cpu_occupancy_s(self, nbytes: int) -> float:
        """Sender CPU time consumed per message (the overhead that
        competes with computation; used by the overlap model).
        Memoized per size, like :meth:`one_way_latency_us`."""
        cached = self._occ_memo.get(nbytes)
        if cached is not None:
            return cached
        rdv = (
            self.protocol.rendezvous_bytes is not None
            and nbytes >= self.protocol.rendezvous_bytes
        )
        proto_byte = (
            self.protocol.rendezvous_ns_per_byte
            if rdv
            else self.protocol.sw_ns_per_byte
        )
        per_msg = self.software_latency_us() * 1e-6
        per_byte = (
            (proto_byte + self.attachment.sw_ns_per_byte)
            / self._cpu_scale
            * 1e-9
        )
        occ = self._occ_memo[nbytes] = per_msg + nbytes * per_byte
        return occ

    def describe(self) -> str:
        return (
            f"{self.protocol.name} over {self.link.name} via "
            f"{self.attachment.name} on {self.core_name}@{self.freq_ghz}GHz"
        )
