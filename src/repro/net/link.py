"""Physical link models.

The paper's platforms expose 100 Mbit and 1 GbE Ethernet; Table 4
additionally considers 10 GbE and 40 Gb InfiniBand as the balance points
mobile SoCs cannot yet reach (no suitable I/O interfaces — Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A full-duplex point-to-point link.

    :param name: human-readable name.
    :param bandwidth_gbps: raw signalling rate, Gbit/s.
    :param efficiency: fraction of raw rate available to payload after
        framing/preamble/IPG (Ethernet: ~94% at MTU 1500).
    :param propagation_us: one-way propagation + PHY latency.
    :param mtu_bytes: maximum transmission unit.
    """

    name: str
    bandwidth_gbps: float
    efficiency: float = 0.94
    propagation_us: float = 1.0
    mtu_bytes: int = 1500

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        if self.mtu_bytes <= 0:
            raise ValueError("MTU must be positive")

    @property
    def payload_bandwidth_mbs(self) -> float:
        """Achievable payload bandwidth in MB/s (the 1 GbE figure the
        paper quotes as the 125 MB/s theoretical maximum uses raw rate;
        we keep both)."""
        return self.bandwidth_gbps * 1e3 / 8.0 * self.efficiency

    @property
    def raw_bandwidth_mbs(self) -> float:
        return self.bandwidth_gbps * 1e3 / 8.0

    def wire_ns_per_byte(self) -> float:
        """Serialisation time per payload byte, ns."""
        return 8.0 / self.bandwidth_gbps

    def frame_time_us(self, nbytes: int | None = None) -> float:
        """Serialisation time of one frame (default: full MTU), µs."""
        n = self.mtu_bytes if nbytes is None else min(nbytes, self.mtu_bytes)
        return n * self.wire_ns_per_byte() / 1e3

    def frames_for(self, nbytes: int) -> int:
        """Frames needed to carry an ``nbytes`` payload (>= 1 — even a
        zero-byte MPI message occupies one frame on the wire).  The
        observability layer aggregates this into the ``link.frames``
        total alongside the byte counters."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return max(1, -(-nbytes // self.mtu_bytes))

    def wire_time_s(self, nbytes: int) -> float:
        """Pure serialisation time of a payload at the raw signalling
        rate, seconds (the floor any protocol stack builds on)."""
        return nbytes * self.wire_ns_per_byte() * 1e-9


#: 100 Mbit Ethernet — the Arndale's only on-board NIC, and the source of
#: the NFS timeouts described in Section 6.2.
FAST_ETHERNET = Link("100Mb Ethernet", 0.1, propagation_us=2.0)

#: Gigabit Ethernet — Tibidabo's interconnect.
GBE = Link("1GbE", 1.0)

#: 10 GbE — what server-class SoCs (Calxeda EnergyCore, X-Gene) integrate.
TEN_GBE = Link("10GbE", 10.0, propagation_us=0.5)

#: 40 Gb QDR InfiniBand — the HPC-class fabric of Table 4.
INFINIBAND_40G = Link(
    "40Gb InfiniBand", 40.0, efficiency=0.96, propagation_us=0.2, mtu_bytes=4096
)
