"""Deterministic-replay harness: the engine's correctness oracle.

The whole reproduction leans on one promise: the discrete-event engine
is deterministic — ties break by sequence number, randomness only ever
enters through explicit seeds.  This module *tests* that promise end to
end: run a named scenario under a fresh
:class:`~repro.obs.recorder.TraceRecorder`, canonicalise the trace
(:func:`repro.obs.export.canonical_text`), hash it, run again from the
same seed, and demand byte identity.  Because the canonical trace
includes every engine fire (with its sequence number) and every MPI
span, a hash match certifies the *execution order*, not just the final
makespan.

Scenarios cover the three layers the paper's results rest on:

=============  ==========================================================
``pingpong``   4-rank pairwise IMB ping-pong over TCP/IP on 1 GbE
``imb``        IMB SendRecv + Exchange rings plus a ping-pong sweep
``hpl``        model-mode HPL (1D block LU) on an 8-node Tibidabo slice
``reliability`` PCIe fault injection, degraded-cluster rebuild, hangs,
               and a wall-power sample
``faults``     HPL under live faults: mid-run node crash + link outages,
               survived via checkpoint/restart (:mod:`repro.fault`)
=============  ==========================================================

Every scenario is a pure function of its integer seed, so *different*
seeds must produce *different* traces — also asserted by the property
tests in ``tests/obs/test_determinism.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs.export import canonical_text, trace_hash
from repro.obs.recorder import TraceRecorder, recording


# ---------------------------------------------------------------------------
# Scenarios (each runs a workload; recording is handled by the harness)
# ---------------------------------------------------------------------------

def _tcp_stack():
    from repro.net.protocol import TCP_IP, ProtocolStack

    return ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)


def _scenario_pingpong(seed: int) -> None:
    """Pairwise ping-pong on 4 ranks (0<->1, 2<->3); the seed draws the
    message-size schedule."""
    from repro.mpi.api import MPIWorld, SyntheticPayload, UniformNetwork

    rng = np.random.default_rng(seed)
    sizes = [int(s) for s in rng.choice((64, 256, 1024, 4096), size=3)]
    world = MPIWorld(4, UniformNetwork(_tcp_stack()))

    def rank_fn(ctx):
        peer = ctx.rank ^ 1
        for nbytes in sizes:
            payload = SyntheticPayload(nbytes)
            for _ in range(2):
                if ctx.rank < peer:
                    yield from ctx.send(peer, payload)
                    yield from ctx.recv(peer)
                else:
                    yield from ctx.recv(peer)
                    yield from ctx.send(peer, payload)
        return ctx.now

    world.run(rank_fn)


def _scenario_imb(seed: int) -> None:
    """The IMB slice of Figure 7: ping-pong, SendRecv and Exchange."""
    from repro.mpi.benchmarks import (
        exchange_benchmark,
        ping_pong,
        sendrecv_benchmark,
    )

    rng = np.random.default_rng(seed)
    stack = _tcp_stack()
    for nbytes in (int(s) for s in rng.choice((8, 512, 8192), size=2)):
        ping_pong(stack, nbytes, repetitions=3)
    sendrecv_benchmark(stack, 4, int(rng.choice((256, 2048))), repetitions=2)
    exchange_benchmark(stack, 4, int(rng.choice((256, 2048))), repetitions=2)


def _scenario_hpl(seed: int) -> None:
    """Model-mode HPL on an 8-node Tibidabo slice; the seed picks the
    matrix order (a strong-scaling point, not weak-scaled)."""
    from repro.apps.hpl import HPL
    from repro.cluster.cluster import tibidabo

    n = 1024 + 128 * (seed % 4)
    HPL().simulate(tibidabo(8), 8, n=n, nb=128)


def _scenario_reliability(seed: int) -> None:
    """Section 6 bring-up: PCIe boot failures, the degraded cluster that
    survives, per-node hang times, and one wall-power sample."""
    from repro.cluster.cluster import degraded_tibidabo
    from repro.cluster.power import ClusterPowerModel
    from repro.cluster.reliability import PCIeFaultInjector

    inj = PCIeFaultInjector(p_boot_failure=0.05, seed=seed)
    cluster, _lost = degraded_tibidabo(n_nodes=32, injector=inj)
    inj.hang_times_s(cluster.n_nodes)
    ClusterPowerModel().sample(cluster, 0.0)


def _scenario_faults(seed: int) -> None:
    """Live fault injection: model-mode HPL on 8 Tibidabo nodes with a
    scripted mid-run node crash plus seed-drawn crashes and link
    outages, survived via checkpoint/restart.  Exercises the whole
    injector path: kill_rank, rollback/restart accounting, and the
    TCP-style link-retry pricing — all of it must replay
    byte-identically from one seed."""
    from repro.apps.hpl import HPLConfig, rank_program
    from repro.cluster.cluster import tibidabo
    from repro.fault import (
        CheckpointPolicy,
        FaultEvent,
        FaultPlan,
        ResilientRunner,
    )

    cluster = tibidabo(8)
    cfg = HPLConfig(n=512 + 128 * (seed % 2), nb=128)
    plan = FaultPlan.generate(
        8,
        horizon_s=2.0,
        seed=seed,
        crash_mtbf_s=4.0,  # seconds: accelerated so seeds vary the mix
        link_loss_rate_hz=2.0,
        link_outage_s=0.01,
        extra=[FaultEvent(0.04, 3, "pcie_hang")],  # guaranteed mid-run
    )
    policy = CheckpointPolicy(
        checkpoint_cost_s=0.004, restart_cost_s=0.008, interval_s=0.025
    )
    ResilientRunner(
        cluster, plan, policy, net_kwargs={"rto_s": 0.005}
    ).run(rank_program(), cfg)


SCENARIOS: dict[str, Callable[[int], None]] = {
    "pingpong": _scenario_pingpong,
    "imb": _scenario_imb,
    "hpl": _scenario_hpl,
    "reliability": _scenario_reliability,
    "faults": _scenario_faults,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def record_scenario(name: str, seed: int = 0) -> TraceRecorder:
    """Run ``name`` from ``seed`` under a fresh recorder; return it."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
    with recording(scenario=name, seed=seed) as rec:
        fn(seed)
    return rec


def scenario_hash(name: str, seed: int = 0) -> str:
    return trace_hash(record_scenario(name, seed))


def scenario_canonical_text(name: str, seed: int = 0) -> str:
    return canonical_text(record_scenario(name, seed))


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of a determinism check."""

    scenario: str
    seed: int
    hashes: tuple[str, ...]
    records: int

    @property
    def deterministic(self) -> bool:
        return len(set(self.hashes)) == 1


def check_determinism(name: str, seed: int = 0, runs: int = 2) -> ReplayReport:
    """Run the scenario ``runs`` times from one seed and compare hashes."""
    if runs < 2:
        raise ValueError("a determinism check needs at least two runs")
    recs = [record_scenario(name, seed) for _ in range(runs)]
    return ReplayReport(
        scenario=name,
        seed=seed,
        hashes=tuple(trace_hash(r) for r in recs),
        records=len(recs[0]),
    )


def assert_deterministic(name: str, seed: int = 0, runs: int = 2) -> ReplayReport:
    """:func:`check_determinism` that raises on divergence."""
    report = check_determinism(name, seed, runs)
    if not report.deterministic:
        raise AssertionError(
            f"scenario {name!r} (seed {seed}) diverged across {runs} runs: "
            f"{report.hashes}"
        )
    return report
