"""The trace recorder and the global recording switch.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Instrumented sites hold a
   reference to the active recorder (or ``None``) and guard every
   emission with a single ``is None`` check; nothing is formatted,
   allocated or looked up on the fast path.
2. **Determinism-friendly.**  Records carry *simulated* time only —
   never wall-clock time, PIDs, or ``id()``-derived values — so that
   two runs from the same seed serialise byte-identically.
3. **One model for every layer.**  The engine, the MPI ranks, the
   network cost models and the cluster reliability/power models all
   speak spans/instants/counters/totals; exporters and the replay
   harness consume the one stream.

The record vocabulary:

=========  =============================================================
span       a named interval ``[t0, t1]`` on a rank (``compute``,
           ``comm`` = sender CPU occupancy, ``wait`` = blocked in a
           receive/exchange, ``net`` = wire transfer)
instant    a point event (message delivery, engine fire, node down)
counter    a timestamped numeric sample (cluster power draw)
total      a timeless aggregate (bytes priced by the protocol stack) —
           for models that have no clock of their own
=========  =============================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True)
class SpanRecord:
    """A named interval of simulated time on one rank."""

    name: str
    cat: str
    rank: int
    t0: float
    t1: float
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class InstantRecord:
    """A point event in simulated time."""

    name: str
    cat: str
    rank: int
    t: float
    args: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CounterRecord:
    """One timestamped sample of a numeric series."""

    name: str
    t: float
    value: float
    rank: int = 0


class TraceRecorder:
    """An in-memory trace sink.

    Recording order is preserved — it *is* part of the canonical trace,
    so the hash also certifies the engine's execution order, not just
    the final timings.
    """

    __slots__ = ("spans", "instants", "counters", "totals", "meta")

    def __init__(self, **meta: Any) -> None:
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.counters: list[CounterRecord] = []
        self.totals: dict[str, float] = {}
        self.meta: dict[str, Any] = dict(meta)

    # -- emission ----------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        rank: int = 0,
        **args: Any,
    ) -> None:
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it starts")
        # No-args emissions dominate hot traced runs; skip the dict sort.
        self.spans.append(
            SpanRecord(
                name, cat, rank, t0, t1,
                tuple(sorted(args.items())) if args else (),
            )
        )

    def instant(
        self, name: str, cat: str, t: float, rank: int = 0, **args: Any
    ) -> None:
        self.instants.append(
            InstantRecord(
                name, cat, rank, t,
                tuple(sorted(args.items())) if args else (),
            )
        )

    def counter(
        self, name: str, t: float, value: float, rank: int = 0
    ) -> None:
        self.counters.append(CounterRecord(name, t, float(value), rank))

    def bump(self, name: str, value: float = 1.0) -> None:
        """Add to a timeless aggregate (for clockless cost models)."""
        self.totals[name] = self.totals.get(name, 0.0) + value

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def ranks(self) -> list[int]:
        """Sorted rank ids that appear anywhere in the trace."""
        seen = {s.rank for s in self.spans}
        seen.update(i.rank for i in self.instants)
        seen.update(c.rank for c in self.counters)
        return sorted(seen)

    def spans_by_cat(self, cat: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.cat == cat]


# ---------------------------------------------------------------------------
# The global switch.  A single module-level slot: instrumented objects
# capture it at construction time (engines) or read it per high-level
# operation (MPI calls, cost models).
# ---------------------------------------------------------------------------

_current: TraceRecorder | None = None


def current() -> TraceRecorder | None:
    """The active recorder, or ``None`` when tracing is disabled."""
    return _current


def enable(recorder: TraceRecorder | None = None, **meta: Any) -> TraceRecorder:
    """Switch tracing on (idempotent if a recorder is passed back in).

    Engines constructed while tracing is enabled are instrumented for
    their whole lifetime; engines constructed before are not touched.
    """
    global _current
    _current = recorder if recorder is not None else TraceRecorder(**meta)
    return _current


def disable() -> TraceRecorder | None:
    """Switch tracing off; returns the recorder that was active."""
    global _current
    rec, _current = _current, None
    return rec


@contextmanager
def recording(
    recorder: TraceRecorder | None = None, **meta: Any
) -> Iterator[TraceRecorder]:
    """``with recording() as rec: ...`` — enable for the block only."""
    prev = _current
    rec = enable(recorder, **meta)
    try:
        yield rec
    finally:
        enable(prev) if prev is not None else disable()
