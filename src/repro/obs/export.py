"""Trace exporters: Chrome trace-event JSON, canonical text, hash.

Two consumers with different needs:

* **Humans** load the Chrome trace-event JSON in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and see one track
  per rank with compute/comm/wait spans, plus counters.
* **The replay harness** hashes the *canonical* serialisation: a line
  per record, in recording order, with floats rendered by ``repr``
  (shortest round-trip — stable across runs and platforms) and memory
  addresses scrubbed.  Same seed ⇒ byte-identical canonical text ⇒
  equal SHA-256.  Recorder metadata is deliberately excluded from the
  hash so that determinism claims rest on *behaviour*, not on labels.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any

from repro.obs.recorder import TraceRecorder

#: CPython object reprs embed heap addresses (e.g. an unnamed process
#: falls back to ``repr(generator)``); they vary run to run and must
#: never reach the canonical form.
_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def _scrub(text: str) -> str:
    return _ADDR.sub("0xADDR", text)


def _args_json(args: tuple[tuple[str, Any], ...]) -> str:
    return json.dumps(dict(args), sort_keys=True, default=str)


# ---------------------------------------------------------------------------
# Canonical form + hash (the determinism oracle)
# ---------------------------------------------------------------------------

def canonical_lines(rec: TraceRecorder) -> list[str]:
    """One line per record, in recording order, then sorted totals."""
    lines: list[str] = []
    for s in rec.spans:
        lines.append(
            f"S|{s.rank}|{s.cat}|{_scrub(s.name)}|{s.t0!r}|{s.t1!r}|"
            f"{_scrub(_args_json(s.args))}"
        )
    for i in rec.instants:
        lines.append(
            f"I|{i.rank}|{i.cat}|{_scrub(i.name)}|{i.t!r}|"
            f"{_scrub(_args_json(i.args))}"
        )
    for c in rec.counters:
        lines.append(f"C|{c.rank}|{c.name}|{c.t!r}|{c.value!r}")
    for name in sorted(rec.totals):
        lines.append(f"T|{name}|{rec.totals[name]!r}")
    return lines


def canonical_text(rec: TraceRecorder) -> str:
    return "\n".join(canonical_lines(rec)) + "\n"


def trace_hash(rec: TraceRecorder) -> str:
    """SHA-256 of the canonical serialisation."""
    return hashlib.sha256(canonical_text(rec).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

def to_chrome_trace(rec: TraceRecorder) -> dict[str, Any]:
    """The Trace Event Format dict (``ts``/``dur`` in microseconds).

    Ranks map to ``tid`` so Perfetto shows one horizontal track per
    rank; counters use the ``C`` phase and render as area charts.
    """
    events: list[dict[str, Any]] = []
    for rank in rec.ranks():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
    for s in rec.spans:
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": s.rank,
                "name": s.name,
                "cat": s.cat,
                "ts": s.t0 * 1e6,
                "dur": s.duration_s * 1e6,
                "args": dict(s.args),
            }
        )
    for i in rec.instants:
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": i.rank,
                "name": i.name,
                "cat": i.cat,
                "ts": i.t * 1e6,
                "s": "t",
                "args": dict(i.args),
            }
        )
    for c in rec.counters:
        events.append(
            {
                "ph": "C",
                "pid": 0,
                "tid": c.rank,
                "name": c.name,
                "ts": c.t * 1e6,
                "args": {"value": c.value},
            }
        )
    other = {k: str(v) for k, v in rec.meta.items()}
    if rec.totals:
        other["totals"] = json.dumps(rec.totals, sort_keys=True)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(rec: TraceRecorder, path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(rec), fh, indent=None, sort_keys=True)
    return path
