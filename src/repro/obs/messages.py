"""Per-message trace capture and analysis (the Paraver role).

Section 5 lists Paraver among the deployed tools, and Section 4 credits
*post-mortem application trace analysis* with discovering the NFS/
interconnect timeouts behind the poor strong-scaling runs.  This module
(formerly ``repro.mpi.tracing``, absorbed into the unified
observability layer) provides that workflow for the simulated MPI:

* :class:`Tracer` wraps an :class:`~repro.mpi.api.MPIWorld` network so
  every message is recorded (src, dst, tag, bytes, send/receive time),
* :class:`TraceAnalysis` computes the communication matrix, per-rank
  time breakdown, late-sender statistics, and — the paper's use case —
  flags *stalls*: periods where a rank waits far longer than the
  expected network latency (the signature of timeouts).

For span-level traces (compute/comm/wait intervals viewable in
Perfetto) use :mod:`repro.obs.recorder` + :mod:`repro.obs.export`
instead; the two views are complementary and can run together — when a
recorder is enabled, :func:`traced_world` deliveries also land in it as
``deliver`` instants via the instrumented MPI layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class MessageRecord:
    """One traced message."""

    src: int
    dst: int
    tag: int
    nbytes: int
    sent_at: float
    received_at: float

    @property
    def flight_time_s(self) -> float:
        return self.received_at - self.sent_at


class Tracer:
    """Wraps a network model, recording every transfer it prices.

    Drop-in: ``world = MPIWorld(n, Tracer(network))``.
    """

    def __init__(self, network: Any) -> None:
        self.network = network
        self.records: list[MessageRecord] = []

    # The MPIWorld network interface -----------------------------------
    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        return self.network.transfer_time_s(src, dst, nbytes)

    def sender_occupancy_s(self, src: int, dst: int, nbytes: int) -> float:
        return self.network.sender_occupancy_s(src, dst, nbytes)

    # Recording hook ------------------------------------------------------
    def record(self, msg: Any) -> None:
        """Record a delivered :class:`~repro.mpi.api.Message`."""
        self.records.append(
            MessageRecord(
                src=msg.src,
                dst=msg.dst,
                tag=msg.tag,
                nbytes=msg.nbytes,
                sent_at=msg.sent_at,
                received_at=msg.received_at,
            )
        )

    def analysis(self, n_ranks: int) -> "TraceAnalysis":
        return TraceAnalysis(self.records, n_ranks)


@dataclass
class TraceAnalysis:
    """Aggregate views over a message trace."""

    records: list[MessageRecord]
    n_ranks: int
    _matrix: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise ValueError("need at least one rank")

    # -- communication matrix ------------------------------------------
    def comm_matrix_bytes(self) -> np.ndarray:
        """(src, dst) -> total payload bytes."""
        if self._matrix is None:
            m = np.zeros((self.n_ranks, self.n_ranks))
            for r in self.records:
                m[r.src, r.dst] += r.nbytes
            self._matrix = m
        return self._matrix

    def message_count_matrix(self) -> np.ndarray:
        m = np.zeros((self.n_ranks, self.n_ranks), dtype=np.intp)
        for r in self.records:
            m[r.src, r.dst] += 1
        return m

    def total_bytes(self) -> int:
        return int(sum(r.nbytes for r in self.records))

    # -- timing statistics -----------------------------------------------
    def flight_times_s(self) -> np.ndarray:
        return np.array([r.flight_time_s for r in self.records])

    def median_flight_time_s(self) -> float:
        t = self.flight_times_s()
        if t.size == 0:
            raise ValueError("empty trace")
        return float(np.median(t))

    def stalls(self, factor: float = 10.0) -> list[MessageRecord]:
        """Messages whose flight time exceeds ``factor`` x the median —
        the timeout signature the paper found in its traces.

        Flight times are size-dependent, so the comparison normalises by
        an affine fit (latency + bytes * slope) over the trace."""
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        if not self.records:
            return []
        sizes = np.array([r.nbytes for r in self.records], dtype=float)
        times = self.flight_times_s()
        if np.ptp(sizes) > 0:
            slope, intercept = np.polyfit(sizes, times, 1)
            slope = max(slope, 0.0)
        else:
            slope, intercept = 0.0, float(np.median(times))
        expected = np.maximum(intercept + slope * sizes, 1e-12)
        return [
            r
            for r, t, e in zip(self.records, times, expected)
            if t > factor * e
        ]

    def late_senders(self) -> dict[int, int]:
        """Messages received after a long queue delay, per source rank
        (a rough Scalasca 'late sender' count)."""
        out: dict[int, int] = {}
        for r in self.stalls(factor=5.0):
            out[r.src] = out.get(r.src, 0) + 1
        return out

    # -- rendering ----------------------------------------------------------
    def summary(self) -> str:
        """Paraver-style one-screen summary."""
        lines = [
            f"messages : {len(self.records)}",
            f"bytes    : {self.total_bytes()}",
        ]
        if self.records:
            t = self.flight_times_s()
            lines += [
                f"flight   : median {np.median(t) * 1e6:.1f} us, "
                f"p99 {np.percentile(t, 99) * 1e6:.1f} us",
                f"stalls   : {len(self.stalls())}",
            ]
        return "\n".join(lines)


def traced_world(n_ranks: int, network: Any, **world_kwargs: Any):
    """Build an :class:`MPIWorld` whose deliveries are traced; returns
    ``(world, tracer)``."""
    from repro.mpi.api import MPIWorld

    tracer = Tracer(network)
    world = MPIWorld(n_ranks, tracer, **world_kwargs)

    # Wrap each context's delivery path to record arrivals.
    for ctx in world.contexts:
        original = ctx._deliver

        def hooked(msg, _orig=original):
            tracer.record(msg)
            _orig(msg)

        ctx._deliver = hooked  # type: ignore[method-assign]
    return world, tracer
