"""``python -m repro trace`` — record a scenario, export, verify.

Examples::

    python -m repro trace hpl                         # summary + hash
    python -m repro trace pingpong --out pp.json      # open in Perfetto
    python -m repro trace reliability --check --runs 3
"""

from __future__ import annotations

import argparse

from repro.obs.export import trace_hash, write_chrome_trace
from repro.obs.replay import SCENARIOS, check_determinism, record_scenario


def trace_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Record a structured trace of a simulated scenario; export "
            "Chrome trace-event JSON (Perfetto), print the per-rank "
            "compute/comm/wait table, and/or verify replay determinism."
        ),
    )
    parser.add_argument(
        "scenario",
        choices=sorted(SCENARIOS),
        help="which workload to trace",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--out", metavar="FILE", help="write Chrome trace JSON to FILE"
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the per-rank compute/comm/wait table",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="replay from the same seed and verify trace-hash equality",
    )
    parser.add_argument(
        "--runs", type=int, default=2, help="replays for --check (>= 2)"
    )
    args = parser.parse_args(argv)
    if args.check and args.runs < 2:
        parser.error("--runs must be >= 2 for a determinism check")

    rec = record_scenario(args.scenario, args.seed)
    print(
        f"scenario {args.scenario!r} seed {args.seed}: {len(rec)} records, "
        f"trace hash {trace_hash(rec)}"
    )
    if args.out:
        path = write_chrome_trace(rec, args.out)
        print(f"chrome trace written to {path} — open in ui.perfetto.dev")
    if args.summary or not (args.out or args.check):
        from repro.analysis.trace_report import render_rank_breakdown

        print(render_rank_breakdown(rec))
    if args.check:
        report = check_determinism(args.scenario, args.seed, runs=args.runs)
        if report.deterministic:
            print(f"deterministic across {args.runs} runs: OK")
        else:
            print(f"DETERMINISM VIOLATION: {report.hashes}")
            return 1
    return 0
