"""Unified observability layer: structured tracing and replay checking.

The paper's cluster results (Figure 6 scalability, Figure 7
interconnect, the 51%-efficiency HPL headline) are all statements about
*where time goes* — compute vs. communication vs. wait.  This package
gives every layer of the simulator one way to say it:

* :mod:`repro.obs.recorder` — :class:`TraceRecorder`, a sink for
  **spans** (named time intervals on a rank), **instants** (points in
  time), **counters** (timestamped samples) and **totals** (timeless
  aggregates).  Recording is off by default and costs one ``is None``
  check per instrumented site when disabled.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open the file in
  Perfetto / ``chrome://tracing``), a canonical line serialisation, and
  a SHA-256 trace hash.  The hash is the engine's determinism oracle:
  two runs from the same seed must produce byte-identical canonical
  traces.
* :mod:`repro.obs.messages` — per-message capture and Paraver-style
  post-mortem analysis (communication matrix, stall detection).  This
  absorbs the former ``repro.mpi.tracing`` module, which now re-exports
  from here.
* :mod:`repro.obs.replay` — named scenarios (reliability, IMB, HPL …)
  run under a fresh recorder, and the deterministic-replay harness that
  asserts same-seed runs hash identically.
* :mod:`repro.obs.cli` — the ``python -m repro trace`` subcommand.

Only the light modules are imported here; :mod:`~repro.obs.replay`,
:mod:`~repro.obs.messages` and :mod:`~repro.obs.cli` pull in the
cluster/apps stack and are imported lazily by their users (this also
keeps :mod:`repro.sim.engine` -> :mod:`repro.obs.recorder` free of
import cycles).
"""

from repro.obs.recorder import (
    CounterRecord,
    InstantRecord,
    SpanRecord,
    TraceRecorder,
    current,
    disable,
    enable,
    recording,
)
from repro.obs.export import (
    canonical_lines,
    canonical_text,
    to_chrome_trace,
    trace_hash,
    write_chrome_trace,
)

__all__ = [
    "CounterRecord",
    "InstantRecord",
    "SpanRecord",
    "TraceRecorder",
    "current",
    "disable",
    "enable",
    "recording",
    "canonical_lines",
    "canonical_text",
    "to_chrome_trace",
    "trace_hash",
    "write_chrome_trace",
]
