"""Power/energy measurement model — the Yokogawa WT230 procedure.

The paper (Section 3.1) measures wall power with a Yokogawa WT230 power
meter bridged between socket and device: 10 Hz sampling, 0.1% precision,
integrating **only over the parallel region** of the application
(initialisation/finalisation excluded, because NFS vs local disk would
bias them).  :class:`PowerMeter` reproduces that procedure over a
simulated power trace so that sampling error and short-run quantisation
behave like the real instrument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.soc import Platform
from repro.kernels.base import Kernel
from repro.timing.executor import SimulatedExecutor, SimulatedRun


@dataclass(frozen=True)
class EnergyMeasurement:
    """One metered run: energy over the measured (parallel) region."""

    platform: str
    kernel: str
    duration_s: float
    energy_j: float
    mean_power_w: float
    n_samples: int

    def energy_per_iteration(self, iterations: int) -> float:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        return self.energy_j / iterations

    def efficiency_mflops_per_watt(self, total_flops: float) -> float:
        """The Green500 metric for this run."""
        if self.energy_j <= 0:
            raise ValueError("no energy recorded")
        return (total_flops / self.duration_s) / 1e6 / self.mean_power_w


class PowerMeter:
    """Model of the Yokogawa WT230 digital power meter.

    :param sample_hz: sampling frequency (10 Hz for the WT230).
    :param precision: relative 1-sigma measurement error (0.1%).
    :param seed: RNG seed for reproducible noise.
    """

    def __init__(
        self, sample_hz: float = 10.0, precision: float = 0.001, seed: int = 0
    ) -> None:
        if sample_hz <= 0:
            raise ValueError("sample rate must be positive")
        if precision < 0:
            raise ValueError("precision must be non-negative")
        self.sample_hz = sample_hz
        self.precision = precision
        self._rng = np.random.default_rng(seed)

    def sample_trace(self, power_watts: float, duration_s: float) -> np.ndarray:
        """Sampled power readings over a constant-power interval."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        n = max(1, int(round(duration_s * self.sample_hz)))
        noise = self._rng.normal(0.0, self.precision, n)
        return power_watts * (1.0 + noise)

    def integrate(self, power_watts: float, duration_s: float) -> tuple[float, int]:
        """Energy (J) over the interval as the meter reports it, plus the
        sample count (trapezoidal over the sampled trace)."""
        trace = self.sample_trace(power_watts, duration_s)
        return float(trace.mean() * duration_s), trace.shape[0]

    def integrate_batch(
        self,
        powers_watts: "list[float]",
        durations_s: "list[float]",
    ) -> list[tuple[float, int]]:
        """:meth:`integrate` over a batch of intervals in one RNG draw.

        The meter's seeded stream is preserved exactly: a Generator's
        batched normal draw produces the same variates as the sequential
        per-interval draws it replaces, so splitting one
        ``sum(n_samples)``-long draw at the per-interval sample counts
        reproduces every scalar trace bit-for-bit (enforced by
        tests/timing/test_sweep_equivalence.py).  Caller-visible RNG
        state after the call is identical to the scalar loop's.
        """
        if len(powers_watts) != len(durations_s):
            raise ValueError("need one power per duration")
        counts = []
        for duration in durations_s:
            if duration <= 0:
                raise ValueError("duration must be positive")
            counts.append(max(1, int(round(duration * self.sample_hz))))
        noise = self._rng.normal(0.0, self.precision, sum(counts))
        out: list[tuple[float, int]] = []
        offset = 0
        for power, duration, n in zip(powers_watts, durations_s, counts):
            trace = power * (1.0 + noise[offset : offset + n])
            offset += n
            out.append((float(trace.mean() * duration), n))
        return out


def measure_kernel(
    platform: Platform,
    kernel: Kernel,
    freq_ghz: float,
    cores: int = 1,
    iterations: int = 1,
    meter: PowerMeter | None = None,
    executor: SimulatedExecutor | None = None,
) -> tuple[SimulatedRun, EnergyMeasurement]:
    """Run the full measurement procedure for one kernel configuration.

    Returns the simulated run and the metered energy over ``iterations``
    iterations of the parallel region.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    meter = meter or PowerMeter()
    executor = executor or SimulatedExecutor(platform)
    run = executor.time_kernel(kernel, freq_ghz, cores=cores)
    power = platform.soc.power.platform_power(
        freq_ghz,
        active_cores=cores,
        total_cores=platform.soc.n_cores,
        mem_bw_utilisation=run.memory_bw_utilisation,
    )
    duration = run.time_s * iterations
    energy, n_samples = meter.integrate(power, duration)
    measurement = EnergyMeasurement(
        platform=platform.name,
        kernel=kernel.tag,
        duration_s=duration,
        energy_j=energy,
        mean_power_w=energy / duration,
        n_samples=n_samples,
    )
    return run, measurement


def measure_kernel_batch(
    platform: Platform,
    kernels: list[Kernel],
    freq_ghz: float,
    cores: int = 1,
    iterations: int = 1,
    meter: PowerMeter | None = None,
    executor: SimulatedExecutor | None = None,
) -> list[tuple[SimulatedRun, EnergyMeasurement]]:
    """:func:`measure_kernel` over a kernel batch with one meter draw.

    Runs and power levels come from the same models the scalar procedure
    consults (the executor memo makes re-timing free), and the meter
    integrates every interval out of a single batched draw via
    :meth:`PowerMeter.integrate_batch` — so each returned pair is
    bit-identical to calling :func:`measure_kernel` on the same meter in
    the same kernel order.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    meter = meter or PowerMeter()
    executor = executor or SimulatedExecutor(platform)
    runs = [executor.time_kernel(k, freq_ghz, cores=cores) for k in kernels]
    powers = [
        platform.soc.power.platform_power(
            freq_ghz,
            active_cores=cores,
            total_cores=platform.soc.n_cores,
            mem_bw_utilisation=run.memory_bw_utilisation,
        )
        for run in runs
    ]
    durations = [run.time_s * iterations for run in runs]
    integrated = meter.integrate_batch(powers, durations)
    out: list[tuple[SimulatedRun, EnergyMeasurement]] = []
    for kernel, run, duration, (energy, n_samples) in zip(
        kernels, runs, durations, integrated
    ):
        out.append(
            (
                run,
                EnergyMeasurement(
                    platform=platform.name,
                    kernel=kernel.tag,
                    duration_s=duration,
                    energy_j=energy,
                    mean_power_w=energy / duration,
                    n_samples=n_samples,
                ),
            )
        )
    return out
