"""Simulated-time and energy-measurement substrate.

Maps a kernel's operation profile onto a platform model to produce a
simulated execution time (:mod:`repro.timing.executor`), and reproduces
the paper's measurement procedure — a Yokogawa WT230 wall-power meter
sampling at 10 Hz with 0.1% precision, integrating only over the parallel
region (:mod:`repro.timing.measurement`).
"""

from repro.timing.roofline import Roofline
from repro.timing.executor import SimulatedExecutor, SimulatedRun
from repro.timing.measurement import (
    EnergyMeasurement,
    PowerMeter,
    measure_kernel,
)
from repro.timing.calibration import (
    PASSES_PER_ITERATION,
    fp_efficiency,
    pattern_bandwidth_factor,
)

__all__ = [
    "Roofline",
    "SimulatedExecutor",
    "SimulatedRun",
    "EnergyMeasurement",
    "PowerMeter",
    "measure_kernel",
    "PASSES_PER_ITERATION",
    "fp_efficiency",
    "pattern_bandwidth_factor",
]
