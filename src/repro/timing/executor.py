"""Simulated executor: kernel profile x platform model -> time.

This is the heart of the single-SoC evaluation (Figures 3 and 4).  For a
kernel iteration it computes

* a **compute time** from the FP work and the calibrated achieved
  fraction of peak (:func:`repro.timing.calibration.fp_efficiency`),
  floored by the instruction-issue time of the full mix,
* a **memory time** with two regimes: when the working set is resident in
  the last-level cache (the suite's default sizes — the reason the paper
  sees performance scale linearly with frequency), the roof is the
  on-chip cache bandwidth, which scales with core frequency; when the
  working set spills (STREAM-sized inputs), the roof is the DRAM model's
  effective bandwidth, and
* takes the max (roofline overlap), then adds Amdahl serial fraction,
  load imbalance, and OpenMP barrier/fork-join overheads for the
  multi-threaded case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.soc import Platform
from repro.kernels.base import Kernel, OperationProfile
from repro.timing import calibration
from repro.timing.roofline import Roofline


@dataclass(frozen=True)
class SimulatedRun:
    """Outcome of one simulated kernel iteration."""

    kernel: str
    platform: str
    freq_ghz: float
    cores: int
    time_s: float
    compute_time_s: float
    memory_time_s: float
    overhead_time_s: float
    flops: float
    bound: str  # "compute" | "memory"

    @property
    def achieved_gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def memory_bw_utilisation(self) -> float:
        """Fraction of the iteration spent waiting on memory — used as the
        memory-activity factor by the power model."""
        return min(1.0, self.memory_time_s / self.time_s) if self.time_s else 0.0


class SimulatedExecutor:
    """Times kernel iterations on one platform model.

    :param platform: the platform under test.
    :param abi: ``"hardfp"`` (the paper's custom images) or ``"softfp"``
        (distribution default on ARMv7 — Section 6.2's penalty).
    """

    def __init__(self, platform: Platform, abi: str = "hardfp") -> None:
        if abi not in ("hardfp", "softfp"):
            raise ValueError("abi must be 'hardfp' or 'softfp'")
        self.platform = platform
        self.abi = abi
        # (kernel, freq, cores, size, passes) -> SimulatedRun.  The run
        # is a frozen dataclass, so sharing one instance across callers
        # is safe; kernels hash by identity (registry singletons), so
        # two distinct kernel objects can never alias a cache entry.
        self._memo: dict[tuple, SimulatedRun] = {}

    # ------------------------------------------------------------------
    def _abi_penalty(self) -> float:
        if self.abi == "hardfp":
            return 1.0
        isa = self.platform.soc.core.isa
        # softfp only costs on ISAs whose default ABI is soft-float.
        return isa.softfp_call_penalty() if not isa.hardfp_abi else 1.0

    def is_resident(self, profile: OperationProfile) -> bool:
        """Whether the working set fits the platform's last-level cache."""
        return (
            profile.working_set_bytes
            <= self.platform.soc.last_level_cache_bytes()
        )

    def effective_bandwidth_gbs(
        self, freq_ghz: float, cores: int, profile: OperationProfile
    ) -> float:
        """Pattern-derated memory-roof bandwidth for this kernel: on-chip
        cache bandwidth when resident, DRAM bandwidth when streaming."""
        soc = self.platform.soc
        if self.is_resident(profile):
            bw = soc.l2_bandwidth_gbs(freq_ghz, cores)
            return bw * calibration.PATTERN_L2_FACTOR[profile.pattern]
        bw = soc.memory.effective_bandwidth_gbs(cores, soc.core.mlp)
        return bw * calibration.pattern_bandwidth_factor(profile.pattern)

    def memory_time_s(
        self, freq_ghz: float, cores: int, profile: OperationProfile
    ) -> float:
        """Memory component of one pass (seconds)."""
        bw = self.effective_bandwidth_gbs(freq_ghz, cores, profile)
        traffic = (
            profile.cache_traffic
            if self.is_resident(profile)
            else profile.bytes_from_dram
        )
        return traffic / (bw * 1e9)

    def roofline(self, freq_ghz: float, cores: int, profile: OperationProfile) -> Roofline:
        """The roofline this kernel sees at this operating point."""
        soc = self.platform.soc
        eff = calibration.fp_efficiency(soc.core.name, profile.characteristics)
        peak = soc.core.peak_gflops(freq_ghz) * cores * eff
        return Roofline(
            peak, self.effective_bandwidth_gbs(freq_ghz, cores, profile)
        )

    # ------------------------------------------------------------------
    def time_kernel(
        self,
        kernel: Kernel,
        freq_ghz: float,
        cores: int = 1,
        size: int | None = None,
        passes: int | None = None,
    ) -> SimulatedRun:
        """Simulate one *iteration* (``passes`` internal sweeps) of a kernel.

        ``passes`` defaults to the calibrated per-kernel count that makes
        a Tegra 2 iteration last ~3 s (see ``calibration.py``).

        Results are memoized per executor: the figure 3/4 sweeps and the
        speedup tables re-time identical (kernel, frequency, cores)
        points hundreds of times, and the computation is a pure function
        of those arguments and the platform model.
        """
        key = (kernel, freq_ghz, cores, size, passes)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        soc = self.platform.soc
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not (1 <= cores <= soc.n_cores):
            raise ValueError(
                f"cores must be in [1, {soc.n_cores}] for {self.platform.name}"
            )
        n = kernel.default_size() if size is None else size
        reps = calibration.passes_for(kernel.tag) if passes is None else passes
        profile = kernel.profile(n)
        ch = profile.characteristics

        # --- single-core compute time ---------------------------------
        eff = calibration.fp_efficiency(soc.core.name, ch)
        achieved_gflops_1 = soc.core.peak_gflops(freq_ghz) * eff
        t_fp = profile.flops / (achieved_gflops_1 * 1e9)
        # Issue floor: even FLOP-free work (msort) occupies issue slots.
        issue_cycles = soc.core.issue_cycles(profile.mix)
        t_issue = issue_cycles / (freq_ghz * 1e9)
        t_comp1 = max(t_fp, t_issue) * self._abi_penalty()

        # --- parallel compute time (Amdahl + imbalance) ----------------
        pf = ch.parallel_fraction
        if cores == 1:
            t_comp = t_comp1
        else:
            t_comp = t_comp1 * (
                (1.0 - pf) + pf * ch.load_imbalance / cores
            )

        # --- memory time ------------------------------------------------
        t_mem = self.memory_time_s(freq_ghz, cores, profile)

        # --- synchronisation overhead ----------------------------------
        t_over = 0.0
        if cores > 1:
            per_barrier = (
                calibration.BARRIER_US_PER_THREAD_AT_1GHZ * cores / freq_ghz
            ) * 1e-6
            t_over = (
                ch.barriers_per_iteration * per_barrier
                + calibration.FORK_JOIN_US_AT_1GHZ / freq_ghz * 1e-6
            )

        t_pass = max(t_comp, t_mem) + t_over
        bound = "memory" if t_mem > t_comp else "compute"
        run = self._memo[key] = SimulatedRun(
            kernel=kernel.tag,
            platform=self.platform.name,
            freq_ghz=freq_ghz,
            cores=cores,
            time_s=t_pass * reps,
            compute_time_s=t_comp * reps,
            memory_time_s=t_mem * reps,
            overhead_time_s=t_over * reps,
            flops=profile.flops * reps,
            bound=bound,
        )
        return run

    def time_suite(
        self,
        kernels: list[Kernel],
        freq_ghz: float,
        cores: int = 1,
    ) -> dict[str, SimulatedRun]:
        """Time the whole suite; returns tag -> run."""
        return {
            k.tag: self.time_kernel(k, freq_ghz, cores=cores) for k in kernels
        }
