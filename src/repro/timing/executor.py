"""Simulated executor: kernel profile x platform model -> time.

This is the heart of the single-SoC evaluation (Figures 3 and 4).  For a
kernel iteration it computes

* a **compute time** from the FP work and the calibrated achieved
  fraction of peak (:func:`repro.timing.calibration.fp_efficiency`),
  floored by the instruction-issue time of the full mix,
* a **memory time** with two regimes: when the working set is resident in
  the last-level cache (the suite's default sizes — the reason the paper
  sees performance scale linearly with frequency), the roof is the
  on-chip cache bandwidth, which scales with core frequency; when the
  working set spills (STREAM-sized inputs), the roof is the DRAM model's
  effective bandwidth, and
* takes the max (roofline overlap), then adds Amdahl serial fraction,
  load imbalance, and OpenMP barrier/fork-join overheads for the
  multi-threaded case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.soc import Platform
from repro.kernels.base import Kernel, OperationProfile
from repro.timing import calibration
from repro.timing.roofline import Roofline, RooflineBatch


@dataclass(frozen=True)
class SimulatedRun:
    """Outcome of one simulated kernel iteration."""

    kernel: str
    platform: str
    freq_ghz: float
    cores: int
    time_s: float
    compute_time_s: float
    memory_time_s: float
    overhead_time_s: float
    flops: float
    bound: str  # "compute" | "memory"

    @property
    def achieved_gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def memory_bw_utilisation(self) -> float:
        """Fraction of the iteration spent waiting on memory — used as the
        memory-activity factor by the power model."""
        return min(1.0, self.memory_time_s / self.time_s) if self.time_s else 0.0


class SimulatedExecutor:
    """Times kernel iterations on one platform model.

    :param platform: the platform under test.
    :param abi: ``"hardfp"`` (the paper's custom images) or ``"softfp"``
        (distribution default on ARMv7 — Section 6.2's penalty).
    """

    def __init__(self, platform: Platform, abi: str = "hardfp") -> None:
        if abi not in ("hardfp", "softfp"):
            raise ValueError("abi must be 'hardfp' or 'softfp'")
        self.platform = platform
        self.abi = abi
        # (kernel, freq, cores, size, passes) -> SimulatedRun.  The run
        # is a frozen dataclass, so sharing one instance across callers
        # is safe; kernels hash by identity (registry singletons), so
        # two distinct kernel objects can never alias a cache entry.
        self._memo: dict[tuple, SimulatedRun] = {}
        # Per-µarch efficiency tables: kernel-tag tuple -> fp-efficiency
        # array, built once per executor (see :meth:`efficiency_table`).
        self._eff_tables: dict[tuple[str, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _abi_penalty(self) -> float:
        if self.abi == "hardfp":
            return 1.0
        isa = self.platform.soc.core.isa
        # softfp only costs on ISAs whose default ABI is soft-float.
        return isa.softfp_call_penalty() if not isa.hardfp_abi else 1.0

    def is_resident(self, profile: OperationProfile) -> bool:
        """Whether the working set fits the platform's last-level cache."""
        return (
            profile.working_set_bytes
            <= self.platform.soc.last_level_cache_bytes()
        )

    def effective_bandwidth_gbs(
        self, freq_ghz: float, cores: int, profile: OperationProfile
    ) -> float:
        """Pattern-derated memory-roof bandwidth for this kernel: on-chip
        cache bandwidth when resident, DRAM bandwidth when streaming."""
        soc = self.platform.soc
        if self.is_resident(profile):
            bw = soc.l2_bandwidth_gbs(freq_ghz, cores)
            return bw * calibration.PATTERN_L2_FACTOR[profile.pattern]
        bw = soc.memory.effective_bandwidth_gbs(cores, soc.core.mlp)
        return bw * calibration.pattern_bandwidth_factor(profile.pattern)

    def memory_time_s(
        self, freq_ghz: float, cores: int, profile: OperationProfile
    ) -> float:
        """Memory component of one pass (seconds)."""
        bw = self.effective_bandwidth_gbs(freq_ghz, cores, profile)
        traffic = (
            profile.cache_traffic
            if self.is_resident(profile)
            else profile.bytes_from_dram
        )
        return traffic / (bw * 1e9)

    def roofline(self, freq_ghz: float, cores: int, profile: OperationProfile) -> Roofline:
        """The roofline this kernel sees at this operating point."""
        soc = self.platform.soc
        eff = calibration.fp_efficiency(soc.core.name, profile.characteristics)
        peak = soc.core.peak_gflops(freq_ghz) * cores * eff
        return Roofline(
            peak, self.effective_bandwidth_gbs(freq_ghz, cores, profile)
        )

    # ------------------------------------------------------------------
    # Batched (operating-point-axis) evaluation.  Every method below is
    # the elementwise twin of its scalar counterpart: identical IEEE
    # operations applied in the identical order, so entry ``i`` of every
    # array equals the scalar result at ``freqs[i]`` bit-for-bit.  The
    # sweep-equivalence suite (tests/timing/test_sweep_equivalence.py)
    # enforces the contract; REPRO_SCALAR_SWEEP=1 forces callers back to
    # the scalar oracle.
    # ------------------------------------------------------------------
    def efficiency_table(self, kernels: Sequence[Kernel]) -> np.ndarray:
        """Per-kernel achieved-fraction-of-peak of this µarch as one
        array, computed once per executor and kernel set — the per-µarch
        efficiency table the batched sweep indexes instead of re-walking
        the scalar lookup at every operating point."""
        key = tuple(k.tag for k in kernels)
        cached = self._eff_tables.get(key)
        if cached is None:
            core = self.platform.soc.core.name
            cached = self._eff_tables[key] = np.array(
                [
                    calibration.fp_efficiency(
                        core, k.profile(k.default_size()).characteristics
                    )
                    for k in kernels
                ]
            )
        return cached

    def effective_bandwidth_gbs_batch(
        self, freqs: Sequence[float], cores: int, profile: OperationProfile
    ) -> np.ndarray:
        """Elementwise twin of :meth:`effective_bandwidth_gbs` over a
        frequency array (mirrors ``SoC.l2_bandwidth_gbs`` inline so the
        resident roof stays one scalar-by-array multiply chain)."""
        soc = self.platform.soc
        f = np.asarray(freqs, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        if not (1 <= cores <= soc.n_cores):
            raise ValueError("cores out of range")
        if self.is_resident(profile):
            if cores == 1:
                scale = 1.0
            elif soc.l2_shared:
                scale = min(
                    1.0 + calibration.SHARED_L2_CORE_SCALING * (cores - 1),
                    calibration.SHARED_L2_SCALING_CAP,
                )
            else:
                scale = float(cores)
            bw = soc.l2_bw_bytes_per_cycle * f * scale
            return bw * calibration.PATTERN_L2_FACTOR[profile.pattern]
        bw = soc.memory.effective_bandwidth_gbs(cores, soc.core.mlp)
        return np.full(
            f.shape, bw * calibration.pattern_bandwidth_factor(profile.pattern)
        )

    def roofline_batch(
        self, freqs: Sequence[float], cores: int, profile: OperationProfile
    ) -> RooflineBatch:
        """The rooflines this kernel sees across a frequency batch."""
        soc = self.platform.soc
        f = np.asarray(freqs, dtype=float)
        eff = calibration.fp_efficiency(soc.core.name, profile.characteristics)
        peak = soc.core.fp64_flops_per_cycle * f * cores * eff
        return RooflineBatch(
            peak, self.effective_bandwidth_gbs_batch(f, cores, profile)
        )

    # ------------------------------------------------------------------
    def time_kernel(
        self,
        kernel: Kernel,
        freq_ghz: float,
        cores: int = 1,
        size: int | None = None,
        passes: int | None = None,
    ) -> SimulatedRun:
        """Simulate one *iteration* (``passes`` internal sweeps) of a kernel.

        ``passes`` defaults to the calibrated per-kernel count that makes
        a Tegra 2 iteration last ~3 s (see ``calibration.py``).

        Results are memoized per executor: the figure 3/4 sweeps and the
        speedup tables re-time identical (kernel, frequency, cores)
        points hundreds of times, and the computation is a pure function
        of those arguments and the platform model.
        """
        key = (kernel, freq_ghz, cores, size, passes)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        soc = self.platform.soc
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if not (1 <= cores <= soc.n_cores):
            raise ValueError(
                f"cores must be in [1, {soc.n_cores}] for {self.platform.name}"
            )
        n = kernel.default_size() if size is None else size
        reps = calibration.passes_for(kernel.tag) if passes is None else passes
        profile = kernel.profile(n)
        ch = profile.characteristics

        # --- single-core compute time ---------------------------------
        eff = calibration.fp_efficiency(soc.core.name, ch)
        achieved_gflops_1 = soc.core.peak_gflops(freq_ghz) * eff
        t_fp = profile.flops / (achieved_gflops_1 * 1e9)
        # Issue floor: even FLOP-free work (msort) occupies issue slots.
        issue_cycles = soc.core.issue_cycles(profile.mix)
        t_issue = issue_cycles / (freq_ghz * 1e9)
        t_comp1 = max(t_fp, t_issue) * self._abi_penalty()

        # --- parallel compute time (Amdahl + imbalance) ----------------
        pf = ch.parallel_fraction
        if cores == 1:
            t_comp = t_comp1
        else:
            t_comp = t_comp1 * (
                (1.0 - pf) + pf * ch.load_imbalance / cores
            )

        # --- memory time ------------------------------------------------
        t_mem = self.memory_time_s(freq_ghz, cores, profile)

        # --- synchronisation overhead ----------------------------------
        t_over = 0.0
        if cores > 1:
            per_barrier = (
                calibration.BARRIER_US_PER_THREAD_AT_1GHZ * cores / freq_ghz
            ) * 1e-6
            t_over = (
                ch.barriers_per_iteration * per_barrier
                + calibration.FORK_JOIN_US_AT_1GHZ / freq_ghz * 1e-6
            )

        t_pass = max(t_comp, t_mem) + t_over
        bound = "memory" if t_mem > t_comp else "compute"
        run = self._memo[key] = SimulatedRun(
            kernel=kernel.tag,
            platform=self.platform.name,
            freq_ghz=freq_ghz,
            cores=cores,
            time_s=t_pass * reps,
            compute_time_s=t_comp * reps,
            memory_time_s=t_mem * reps,
            overhead_time_s=t_over * reps,
            flops=profile.flops * reps,
            bound=bound,
        )
        return run

    def time_kernel_batch(
        self,
        kernel: Kernel,
        freqs: Sequence[float],
        cores: int = 1,
        size: int | None = None,
        passes: int | None = None,
    ) -> list[SimulatedRun]:
        """:meth:`time_kernel` over a whole frequency batch at once.

        Already-memoized points are served from the executor memo;
        missing points are computed as NumPy array ops over the
        operating-point axis, replaying the scalar model's operation
        order element by element so every returned run is bit-identical
        to the scalar path.  Computed points are stored into the memo,
        so a later scalar ``time_kernel`` call returns the very same
        frozen run object (the property the measurement path and the
        on-disk result cache rely on).
        """
        freqs = [float(f) for f in freqs]
        out: list[SimulatedRun | None] = [
            self._memo.get((kernel, f, cores, size, passes)) for f in freqs
        ]
        missing = [i for i, run in enumerate(out) if run is None]
        if not missing:
            return out
        soc = self.platform.soc
        f = np.array([freqs[i] for i in missing], dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        if not (1 <= cores <= soc.n_cores):
            raise ValueError(
                f"cores must be in [1, {soc.n_cores}] for {self.platform.name}"
            )
        n = kernel.default_size() if size is None else size
        reps = calibration.passes_for(kernel.tag) if passes is None else passes
        profile = kernel.profile(n)
        ch = profile.characteristics

        # --- single-core compute time (cf. time_kernel) ----------------
        eff = calibration.fp_efficiency(soc.core.name, ch)
        achieved_gflops_1 = soc.core.fp64_flops_per_cycle * f * eff
        t_fp = profile.flops / (achieved_gflops_1 * 1e9)
        issue_cycles = soc.core.issue_cycles(profile.mix)
        t_issue = issue_cycles / (f * 1e9)
        t_comp1 = np.maximum(t_fp, t_issue) * self._abi_penalty()

        # --- parallel compute time -------------------------------------
        pf = ch.parallel_fraction
        if cores == 1:
            t_comp = t_comp1
        else:
            t_comp = t_comp1 * ((1.0 - pf) + pf * ch.load_imbalance / cores)

        # --- memory time -----------------------------------------------
        bw = self.effective_bandwidth_gbs_batch(f, cores, profile)
        traffic = (
            profile.cache_traffic
            if self.is_resident(profile)
            else profile.bytes_from_dram
        )
        t_mem = traffic / (bw * 1e9)

        # --- synchronisation overhead ----------------------------------
        if cores > 1:
            per_barrier = (
                calibration.BARRIER_US_PER_THREAD_AT_1GHZ * cores / f
            ) * 1e-6
            t_over = (
                ch.barriers_per_iteration * per_barrier
                + calibration.FORK_JOIN_US_AT_1GHZ / f * 1e-6
            )
        else:
            t_over = np.zeros_like(f)

        t_pass = np.maximum(t_comp, t_mem) + t_over
        for j, i in enumerate(missing):
            tp, tc = float(t_pass[j]), float(t_comp[j])
            tm, to = float(t_mem[j]), float(t_over[j])
            key = (kernel, freqs[i], cores, size, passes)
            out[i] = self._memo[key] = SimulatedRun(
                kernel=kernel.tag,
                platform=self.platform.name,
                freq_ghz=freqs[i],
                cores=cores,
                time_s=tp * reps,
                compute_time_s=tc * reps,
                memory_time_s=tm * reps,
                overhead_time_s=to * reps,
                flops=profile.flops * reps,
                bound="memory" if tm > tc else "compute",
            )
        return out

    def evict_kernel(self, kernel_or_tag: Kernel | str) -> int:
        """Drop every memoized run of one kernel, by object or by tag.

        The memo keys kernels by identity, so re-registering a kernel
        implementation under an existing tag would otherwise keep this
        executor serving runs of the replaced object forever.  Returns
        the number of entries dropped."""
        if isinstance(kernel_or_tag, str):
            doomed = [
                key for key in self._memo if key[0].tag == kernel_or_tag
            ]
        else:
            doomed = [key for key in self._memo if key[0] is kernel_or_tag]
        for key in doomed:
            del self._memo[key]
        return len(doomed)

    def time_suite(
        self,
        kernels: list[Kernel],
        freq_ghz: float,
        cores: int = 1,
    ) -> dict[str, SimulatedRun]:
        """Time the whole suite; returns tag -> run."""
        return {
            k.tag: self.time_kernel(k, freq_ghz, cores=cores) for k in kernels
        }
