"""Classical roofline model (Williams et al.) used by the executor.

Attainable performance is ``min(peak_gflops, bandwidth * intensity)``;
the ridge point is the intensity where the two roofs meet.  The module is
also exposed publicly because the examples plot platform rooflines to
explain *why* a kernel lands where it does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Roofline:
    """A two-roof performance model.

    :param peak_gflops: the compute roof (GFLOP/s).
    :param bandwidth_gbs: the memory roof slope (GB/s).
    """

    peak_gflops: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("roofs must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOPs/byte at which the kernel stops being memory-bound."""
        return self.peak_gflops / self.bandwidth_gbs

    def attainable_gflops(self, intensity: float) -> float:
        """Attainable GFLOP/s at the given arithmetic intensity."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return min(self.peak_gflops, self.bandwidth_gbs * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_intensity

    def time_seconds(self, flops: float, dram_bytes: float) -> float:
        """Execution time of a phase under this roofline (max of the
        compute and the memory time — perfect overlap)."""
        if flops < 0 or dram_bytes < 0:
            raise ValueError("work must be non-negative")
        t_comp = flops / (self.peak_gflops * 1e9)
        t_mem = dram_bytes / (self.bandwidth_gbs * 1e9)
        return max(t_comp, t_mem)


@dataclass(frozen=True)
class RooflineBatch:
    """A two-roof model over a whole batch of operating points.

    Elementwise twin of :class:`Roofline`: entry ``i`` of every result
    is bit-identical to the scalar model built from
    ``(peak_gflops[i], bandwidth_gbs[i])`` — same IEEE operations in the
    same order — which is what lets the vectorized frequency sweep
    replace the scalar one without perturbing the golden figures
    (enforced by ``tests/timing/test_sweep_equivalence.py``).

    :param peak_gflops: compute roof per point (GFLOP/s), 1-D array.
    :param bandwidth_gbs: memory roof slope per point (GB/s), same shape.
    """

    peak_gflops: np.ndarray
    bandwidth_gbs: np.ndarray

    def __post_init__(self) -> None:
        peak = np.asarray(self.peak_gflops, dtype=float)
        bw = np.asarray(self.bandwidth_gbs, dtype=float)
        if peak.shape != bw.shape or peak.ndim != 1:
            raise ValueError("roof arrays must be 1-D with matching shapes")
        if peak.size == 0:
            raise ValueError("batch needs at least one operating point")
        if np.any(peak <= 0) or np.any(bw <= 0):
            raise ValueError("roofs must be positive")
        object.__setattr__(self, "peak_gflops", peak)
        object.__setattr__(self, "bandwidth_gbs", bw)

    def __len__(self) -> int:
        return int(self.peak_gflops.shape[0])

    def at(self, i: int) -> Roofline:
        """The scalar roofline of point ``i``."""
        return Roofline(
            float(self.peak_gflops[i]), float(self.bandwidth_gbs[i])
        )

    @property
    def ridge_intensity(self) -> np.ndarray:
        """Per-point FLOPs/byte at which kernels stop being memory-bound."""
        return self.peak_gflops / self.bandwidth_gbs

    def attainable_gflops(self, intensity: float) -> np.ndarray:
        """Per-point attainable GFLOP/s at one arithmetic intensity."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return np.minimum(self.peak_gflops, self.bandwidth_gbs * intensity)

    def is_memory_bound(self, intensity: float) -> np.ndarray:
        return intensity < self.ridge_intensity

    def time_seconds(self, flops: float, dram_bytes: float) -> np.ndarray:
        """Per-point execution time of one phase (roofline overlap)."""
        if flops < 0 or dram_bytes < 0:
            raise ValueError("work must be non-negative")
        t_comp = flops / (self.peak_gflops * 1e9)
        t_mem = dram_bytes / (self.bandwidth_gbs * 1e9)
        return np.maximum(t_comp, t_mem)
