"""Classical roofline model (Williams et al.) used by the executor.

Attainable performance is ``min(peak_gflops, bandwidth * intensity)``;
the ridge point is the intensity where the two roofs meet.  The module is
also exposed publicly because the examples plot platform rooflines to
explain *why* a kernel lands where it does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Roofline:
    """A two-roof performance model.

    :param peak_gflops: the compute roof (GFLOP/s).
    :param bandwidth_gbs: the memory roof slope (GB/s).
    """

    peak_gflops: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("roofs must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOPs/byte at which the kernel stops being memory-bound."""
        return self.peak_gflops / self.bandwidth_gbs

    def attainable_gflops(self, intensity: float) -> float:
        """Attainable GFLOP/s at the given arithmetic intensity."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return min(self.peak_gflops, self.bandwidth_gbs * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_intensity

    def time_seconds(self, flops: float, dram_bytes: float) -> float:
        """Execution time of a phase under this roofline (max of the
        compute and the memory time — perfect overlap)."""
        if flops < 0 or dram_bytes < 0:
            raise ValueError("work must be non-negative")
        t_comp = flops / (self.peak_gflops * 1e9)
        t_mem = dram_bytes / (self.bandwidth_gbs * 1e9)
        return max(t_comp, t_mem)
