"""Calibration constants of the timing model — all in one place.

Every constant here is anchored to a number the paper publishes; nothing
else in the timing path is tuned.  The anchors (Section 3.1):

* Tegra 3 is 9% faster than Tegra 2 at 1 GHz (better memory controller).
* The Arndale (Exynos 5250 / Cortex-A15) is 30% faster than Tegra 2 and
  22% faster than Tegra 3 at 1 GHz, and "just two times slower" than the
  Core i7.
* At maximum frequencies: Tegra 3 = 1.36x Tegra 2, Exynos = 2.3x Tegra 2
  and 1.7x Tegra 3, the i7 = 3x the Exynos (and "almost eight times"
  Tegra 2, Section 4).
* Energy per iteration at 1 GHz single-core: 23.93 J (Tegra 2), 19.62 J
  (Tegra 3), 16.95 J (Exynos), 28.57 J (i7) — which, with the power
  models of :mod:`repro.arch.catalog`, implies a ~3 s Tegra 2 iteration.

``FP_EFFICIENCY_BASE`` is the achieved fraction of peak FP64 throughput
for out-of-the-box compiled scalar-ish HPC code.  The wide SIMD machines
achieve a *smaller fraction* of their (much higher) peak: at 1 GHz the
achieved GFLOPS work out to A9 0.55, A15 0.72 (1.31x), Sandy Bridge 1.44
(2.0x the A15) — exactly the paper's single-core ladder.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels.base import AccessPattern, KernelCharacteristics

#: Achieved fraction of peak FP64 for compiled scalar code, per µarch.
FP_EFFICIENCY_BASE: dict[str, float] = {
    "Cortex-A9": 0.55,
    "Cortex-A15": 0.36,
    "SandyBridge": 0.18,
    "Cortex-A15/ARMv8": 0.20,
    # Section 2 comparator platforms (repro.arch.servers):
    "X-Gene/ARMv8": 0.20,
    "Saltwell": 0.40,  # in-order 2-wide x86 (Atom)
    "Nehalem": 0.25,  # SSE-era OoO x86
}

#: Additional fraction of peak unlocked per unit of a kernel's
#: ``simd_fraction`` (auto-vectorisation quality).  ARMv7 NEON has no
#: FP64 lanes, so the A9/A15 gain nothing; AVX gains substantially.
SIMD_UPLIFT: dict[str, float] = {
    "Cortex-A9": 0.0,
    "Cortex-A15": 0.08,
    "SandyBridge": 0.55,
    "Cortex-A15/ARMv8": 0.60,
    "X-Gene/ARMv8": 0.60,
    "Saltwell": 0.25,
    "Nehalem": 0.45,
}

#: Relative throughput loss per unit branch intensity (shorter pipelines
#: and better predictors lose less).
BRANCH_SENSITIVITY: dict[str, float] = {
    "Cortex-A9": 0.30,
    "Cortex-A15": 0.20,
    "SandyBridge": 0.12,
    "Cortex-A15/ARMv8": 0.20,
    "X-Gene/ARMv8": 0.20,
    "Saltwell": 0.40,  # in-order: mispredicts hurt most
    "Nehalem": 0.15,
}

#: DRAM bandwidth-derating factor per dominant access pattern (streaming
#: regime: working set larger than the last-level cache).
PATTERN_BANDWIDTH_FACTOR: dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 1.00,
    AccessPattern.BLOCKED: 0.95,
    AccessPattern.STRIDED: 0.75,
    AccessPattern.MIXED: 0.80,
    AccessPattern.RANDOM: 0.35,
}

#: On-chip (LLC) bandwidth derate per access pattern (resident regime).
#: Banked caches tolerate strides better than DRAM does.
PATTERN_L2_FACTOR: dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 1.00,
    AccessPattern.BLOCKED: 1.00,
    AccessPattern.STRIDED: 0.75,
    AccessPattern.MIXED: 0.85,
    AccessPattern.RANDOM: 0.60,
}

#: Aggregate shared-L2 bandwidth gain per additional active core, and the
#: saturation cap.  The Tegra/Exynos L2 is a single shared block whose
#: bandwidth stops scaling past two requestors; Sandy Bridge's private
#: L2s scale linearly (handled in :meth:`repro.arch.soc.SoC.l2_bandwidth_gbs`).
SHARED_L2_CORE_SCALING = 0.9
SHARED_L2_SCALING_CAP = 2.0

#: OpenMP per-barrier cost in microseconds at 1 GHz for 1..n threads
#: (centralised sense-reversing barrier: grows with thread count).
BARRIER_US_PER_THREAD_AT_1GHZ = 1.8

#: Per parallel-region fork/join overhead (µs at 1 GHz).
FORK_JOIN_US_AT_1GHZ = 4.0

#: Internal passes per reported "iteration", per kernel tag — chosen so
#: every kernel's Tegra 2 @1 GHz single-core iteration lasts ~3 s, which
#: is what the paper's published energies/iteration imply.  (Section 3.1:
#: "We set the number of iterations so that the total execution time is
#: similar for all platforms".)
PASSES_PER_ITERATION: dict[str, int] = {
    "vecop": 20800,
    "dmmm": 200,
    "3dstc": 4420,
    "2dcon": 575,
    "fft": 285,
    "red": 7500,
    "hist": 4250,
    "msort": 585,
    "nbody": 20,
    "amcd": 205,
    "spvm": 3570,
}


@lru_cache(maxsize=None)
def fp_efficiency(uarch: str, characteristics: KernelCharacteristics) -> float:
    """Achieved fraction of peak FP64 for a kernel on a micro-architecture.

    Combines the scalar base efficiency, the SIMD uplift weighted by the
    kernel's vectorisable fraction, and the branch-intensity penalty.

    Memoized: both arguments are immutable (the characteristics are a
    frozen dataclass) and the sweep campaigns evaluate the same
    (µarch, kernel) pairs at every frequency point.
    """
    try:
        base = FP_EFFICIENCY_BASE[uarch]
    except KeyError:
        raise KeyError(
            f"no calibration for µarch {uarch!r}; known: "
            f"{sorted(FP_EFFICIENCY_BASE)}"
        ) from None
    eff = base + SIMD_UPLIFT[uarch] * characteristics.simd_fraction * base
    eff /= 1.0 + BRANCH_SENSITIVITY[uarch] * characteristics.branch_intensity
    return min(eff, 1.0)


def pattern_bandwidth_factor(pattern: AccessPattern) -> float:
    """Bandwidth derate for a dominant access pattern."""
    return PATTERN_BANDWIDTH_FACTOR[pattern]


def passes_for(tag: str) -> int:
    """Internal passes making up one reported iteration of ``tag``."""
    return PASSES_PER_ITERATION.get(tag, 1)
