"""Phase-resolved power traces and windowed measurement.

The paper's procedure (Section 3.1) measures "only for the parallel
region of the application, excluding the initialization and finalization
phases".  This module generalises the constant-power measurement of
:mod:`repro.timing.measurement` to *traces*: a run is a sequence of
phases (init, compute, communication, I/O, finalise), each with its own
power level, and the meter integrates over a selected window — so the
initialisation-exclusion procedure, and the bias of including it, are
both computable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.timing.measurement import PowerMeter


@dataclass(frozen=True)
class Phase:
    """One constant-power interval of a run."""

    name: str
    duration_s: float
    power_w: float
    measured: bool = True  # inside the paper's measurement window?

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if self.power_w < 0:
            raise ValueError("power must be non-negative")


@dataclass
class PowerTrace:
    """A piecewise-constant power profile of one application run."""

    phases: list[Phase] = field(default_factory=list)

    def add(self, name: str, duration_s: float, power_w: float,
            measured: bool = True) -> "PowerTrace":
        self.phases.append(Phase(name, duration_s, power_w, measured))
        return self

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    @property
    def measured_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases if p.measured)

    def true_energy_j(self, measured_only: bool = True) -> float:
        """Exact energy of the (selected) phases."""
        return sum(
            p.duration_s * p.power_w
            for p in self.phases
            if p.measured or not measured_only
        )

    def mean_power_w(self, measured_only: bool = True) -> float:
        phases = [p for p in self.phases if p.measured or not measured_only]
        if not phases:
            raise ValueError("no phases selected")
        dur = sum(p.duration_s for p in phases)
        return sum(p.duration_s * p.power_w for p in phases) / dur

    def sample(self, sample_hz: float = 10.0) -> np.ndarray:
        """Noise-free sampled power readings over the full run."""
        if sample_hz <= 0:
            raise ValueError("sample rate must be positive")
        times = np.arange(0.0, self.total_duration_s, 1.0 / sample_hz)
        out = np.empty_like(times)
        for i, t in enumerate(times):
            acc = 0.0
            for p in self.phases:
                if t < acc + p.duration_s:
                    out[i] = p.power_w
                    break
                acc += p.duration_s
            else:  # numerical edge at the very end
                out[i] = self.phases[-1].power_w
        return out


def meter_trace(
    trace: PowerTrace,
    meter: PowerMeter | None = None,
    measured_only: bool = True,
) -> float:
    """Integrate a trace the way the WT230 would: phase by phase, with
    sampling quantisation and instrument noise."""
    meter = meter or PowerMeter()
    energy = 0.0
    for p in trace.phases:
        if measured_only and not p.measured:
            continue
        e, _n = meter.integrate(p.power_w, p.duration_s)
        energy += e
    return energy


def app_power_trace(
    platform,
    run,
    freq_ghz: float,
    active_cores: int,
    init_s: float = 0.0,
    init_power_fraction: float = 0.6,
) -> PowerTrace:
    """Build a trace from a simulated application/kernel run: a compute
    phase and a communication/wait phase with different power draws,
    optionally preceded by an (unmeasured) initialisation phase.

    :param run: object with ``time_s`` and ``comm_fraction`` (an
        :class:`~repro.apps.base.AppRunResult`) or ``memory_bw_utilisation``
        (a :class:`~repro.timing.executor.SimulatedRun`).
    """
    power = platform.soc.power
    total = platform.soc.n_cores
    busy = power.platform_power(freq_ghz, active_cores, total, 0.4)
    # Communication waits keep the core spinning in the MPI progress
    # engine but idle the FP units — a bit below full compute power.
    waiting = power.platform_power(freq_ghz, active_cores, total, 0.05) * 0.92

    comm_frac = getattr(run, "comm_fraction", 0.0)
    trace = PowerTrace()
    if init_s > 0:
        trace.add("init (NFS load)", init_s, busy * init_power_fraction,
                  measured=False)
    compute_s = run.time_s * (1.0 - comm_frac)
    comm_s = run.time_s * comm_frac
    if compute_s > 0:
        trace.add("compute", compute_s, busy)
    if comm_s > 0:
        trace.add("communication", comm_s, waiting)
    return trace


def initialisation_bias(trace: PowerTrace) -> float:
    """Relative error in energy-per-run if the unmeasured phases were
    (wrongly) included — quantifying why the paper excludes them."""
    measured = trace.true_energy_j(measured_only=True)
    everything = trace.true_energy_j(measured_only=False)
    if measured == 0:
        raise ValueError("trace has no measured energy")
    return everything / measured - 1.0
